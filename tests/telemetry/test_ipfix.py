"""Tests for IPFIX packet sampling."""

import numpy as np
import pytest

from repro.telemetry import IpfixExporter, IpfixRecord


class TestSampling:
    def test_deterministic_per_hour(self):
        exporter = IpfixExporter(seed=5)
        true = np.array([1e9, 5e8, 1e6])
        assert np.array_equal(exporter.sample_bytes(true, 10),
                              exporter.sample_bytes(true, 10))

    def test_different_hours_differ(self):
        exporter = IpfixExporter(seed=5)
        true = np.full(100, 1e9)
        a = exporter.sample_bytes(true, 1)
        b = exporter.sample_bytes(true, 2)
        assert not np.array_equal(a, b)

    def test_unbiased_estimate(self):
        exporter = IpfixExporter(seed=5)
        true = np.full(2000, 1e9)
        sampled = exporter.sample_bytes(true, 3)
        assert sampled.mean() == pytest.approx(1e9, rel=0.05)

    def test_small_flows_can_vanish(self):
        exporter = IpfixExporter(seed=5)
        # ~1 packet of 1000B: sampled with p=1/4096, almost always zero
        true = np.full(500, 1000.0)
        sampled = exporter.sample_bytes(true, 3)
        assert (sampled == 0.0).sum() > 450

    def test_sampled_values_are_multiples_of_quantum(self):
        exporter = IpfixExporter(sampling_rate=4096, packet_bytes=1000.0,
                                 seed=5)
        true = np.full(100, 1e10)
        sampled = exporter.sample_bytes(true, 3)
        quantum = 4096 * 1000.0
        assert np.allclose(sampled % quantum, 0.0)

    def test_rate_one_is_identity(self):
        exporter = IpfixExporter(sampling_rate=1)
        true = np.array([123.0, 0.0, 9e9])
        assert np.array_equal(exporter.sample_bytes(true, 1), true)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            IpfixExporter(sampling_rate=0)


class TestExportHour:
    def test_zero_estimates_dropped(self):
        exporter = IpfixExporter(seed=5)
        entries = [(0, 1, 100, 2, 1000.0)] * 50  # tiny flows
        records = exporter.export_hour(3, entries)
        assert len(records) < 50

    def test_fields_preserved(self):
        exporter = IpfixExporter(sampling_rate=1)
        entries = [(7, 11, 100, 3, 5e6)]
        records = exporter.export_hour(4, entries)
        assert len(records) == 1
        record = records[0]
        assert record == IpfixRecord(4, 7, 11, 100, 3, 5e6)

    def test_empty_input(self):
        assert IpfixExporter().export_hour(0, []) == []

    def test_hour_mismatch_not_checked_here(self):
        # export_hour stamps the given hour; chunking is the aggregator's
        # job, which *does* validate (see pipeline tests)
        exporter = IpfixExporter(sampling_rate=1)
        records = exporter.export_hour(9, [(0, 1, 2, 3, 1e7)])
        assert records[0].hour == 9
