"""Tests for the SNMP poller and its unreliability model."""

import pytest

from repro.pipeline import Outage
from repro.telemetry import (
    SnmpParams,
    SnmpPoller,
    compare_inference,
    infer_outages_from_snmp,
)


def perfect_params():
    return SnmpParams(missed_poll_rate=0.0, stale_agent_fraction=0.0,
                      false_down_rate=0.0)


class TestPolling:
    def test_perfect_poller_sees_truth(self):
        truth = [Outage(1, 10, 14)]
        poller = SnmpPoller([1, 2], truth, perfect_params(), seed=1)
        readings = poller.poll_window(0, 24)
        for reading in readings:
            expected_up = not (reading.link_id == 1
                               and 10 <= reading.hour < 14)
            assert reading.oper_up == expected_up

    def test_poll_cadence(self):
        poller = SnmpPoller([1], [], perfect_params(), seed=1)
        readings = poller.poll_window(0, 1)
        assert len(readings) == 4  # 15-minute polls

    def test_missed_polls_reduce_readings(self):
        params = SnmpParams(missed_poll_rate=0.5, stale_agent_fraction=0.0,
                            false_down_rate=0.0)
        poller = SnmpPoller([1], [], params, seed=1)
        readings = poller.poll_window(0, 48)
        assert len(readings) < 48 * 4 * 0.8

    def test_false_downs_appear(self):
        params = SnmpParams(missed_poll_rate=0.0, stale_agent_fraction=0.0,
                            false_down_rate=0.2)
        poller = SnmpPoller([1], [], params, seed=1)
        readings = poller.poll_window(0, 48)
        assert any(not r.oper_up for r in readings)

    def test_stale_agents_lag_transitions(self):
        params = SnmpParams(missed_poll_rate=0.0, stale_agent_fraction=1.0,
                            stale_polls=4, false_down_rate=0.0)
        truth = [Outage(1, 10, 20)]
        poller = SnmpPoller([1], truth, params, seed=1)
        readings = [r for r in poller.poll_window(9, 12)
                    if r.link_id == 1]
        # at hour 10.0 the link is down, but the stale agent still says up
        at_transition = [r for r in readings if 10.0 <= r.hour < 10.5]
        assert any(r.oper_up for r in at_transition)


class TestInference:
    def test_infer_simple_interval(self):
        truth = [Outage(1, 10, 14)]
        poller = SnmpPoller([1], truth, perfect_params(), seed=1)
        inferred = infer_outages_from_snmp(poller.poll_window(0, 24))
        assert len(inferred) == 1
        outage = inferred[0]
        assert outage.link_id == 1
        assert outage.start_hour == 10
        assert outage.end_hour == 14

    def test_flap_suppression(self):
        # one spurious down reading: shorter than min_hours, dropped
        params = SnmpParams(missed_poll_rate=0.0, stale_agent_fraction=0.0,
                            false_down_rate=0.05)
        poller = SnmpPoller([1], [], params, seed=3)
        inferred = infer_outages_from_snmp(poller.poll_window(0, 72),
                                           min_hours=1.0)
        assert inferred == []


class TestComparison:
    def test_perfect_inference_scores_perfectly(self):
        truth = [Outage(1, 10, 14), Outage(2, 5, 7)]
        quality = compare_inference(truth, truth, 0, 24)
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_partial_detection(self):
        truth = [Outage(1, 10, 14)]
        inferred = [Outage(1, 10, 12), Outage(2, 0, 2)]
        quality = compare_inference(truth, inferred, 0, 24)
        assert quality.recall == pytest.approx(0.5)
        assert quality.precision == pytest.approx(0.5)

    def test_snmp_less_reliable_than_truth(self):
        """The paper's rationale: realistic SNMP misses outage hours."""
        truth = [Outage(l, 10 + l, 16 + l) for l in range(20)]
        params = SnmpParams(stale_agent_fraction=0.5, stale_polls=6)
        poller = SnmpPoller(list(range(20)), truth, params, seed=5)
        inferred = infer_outages_from_snmp(poller.poll_window(0, 48))
        quality = compare_inference(truth, inferred, 0, 48)
        assert quality.recall < 1.0
