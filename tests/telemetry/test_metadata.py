"""Tests for the metadata store joins."""

import pytest

from repro.telemetry import GeoIPDatabase, MetadataStore
from repro.topology import MetroCatalog, TopologyParams, WANParams, generate_as_graph, generate_wan
from repro.traffic import PrefixUniverse


@pytest.fixture(scope="module")
def store():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=3, n_transit=6, n_access=10, n_cdn=2, n_stub=20), seed=6)
    wan = generate_wan(graph, WANParams(n_regions=4, n_dest_prefixes=12),
                       seed=6)
    universe = PrefixUniverse(graph, seed=6)
    geoip = GeoIPDatabase(universe, metros, error_rate=0.0, seed=6)
    return MetadataStore(wan, geoip), wan, universe


class TestMetadataStore:
    def test_link_metadata(self, store):
        meta, wan, _u = store
        link = wan.links[0]
        lm = meta.link_metadata(link.link_id)
        assert lm.peer_asn == link.peer_asn
        assert lm.metro == link.metro
        assert lm.capacity_gbps == link.capacity_gbps

    def test_destination_features(self, store):
        meta, wan, _u = store
        dest = wan.dest_prefixes[0]
        region, service = meta.destination_features(dest.prefix_id)
        assert region == dest.region
        assert service == dest.service

    def test_source_location_matches_geoip(self, store):
        meta, _wan, universe = store
        prefix = universe.prefix(0)
        assert meta.source_location(prefix.prefix_id) == prefix.metro

    def test_unknown_source_location(self, store):
        meta, _wan, _u = store
        assert meta.source_location(10**9) is None

    def test_unknown_link_raises(self, store):
        meta, _wan, _u = store
        with pytest.raises(KeyError):
            meta.link_metadata(10**9)
