"""Tests for the paper-reference data and comparison helpers."""

import pytest

from repro.experiments import paper


class TestReferenceData:
    def test_all_tables_well_formed(self):
        for ref in (paper.PAPER_TABLE4, paper.PAPER_TABLE5,
                    paper.PAPER_TABLE6, paper.PAPER_TABLE7,
                    paper.PAPER_TABLE9, paper.PAPER_TABLE10):
            for model, ks in ref.items():
                assert set(ks) == {1, 2, 3}
                assert 0.0 < ks[1] <= ks[2] <= ks[3] <= 1.0, model

    def test_headline_value_present(self):
        # the abstract's 76%: Hist_AL+G top-3 on all outages (Table 5)
        assert paper.PAPER_TABLE5["Hist_AL+G"][3] == pytest.approx(0.7642)
        assert paper.PAPER_FACTS["headline_withdrawal_top3"] == 0.76

    def test_paper_orderings_hold_in_reference(self):
        # sanity: the claims our benchmarks assert are true of the
        # paper's own numbers too
        t4 = paper.PAPER_TABLE4
        assert t4["Hist_AP/AL/A"][3] == max(
            v[3] for m, v in t4.items() if not m.startswith("Oracle"))
        t5 = paper.PAPER_TABLE5
        assert t5["Hist_AL+G"][3] == max(
            v[3] for m, v in t5.items() if not m.startswith("Oracle"))
        t7 = paper.PAPER_TABLE7
        assert all(t7["Hist_AL+G"][k] == max(
            v[k] for m, v in t7.items() if not m.startswith("Oracle"))
            for k in (1, 2, 3))
        t6 = paper.PAPER_TABLE6
        assert t6["Hist_AP"][3] > t7["Hist_AP"][3]  # seen >> unseen


class TestComparisonHelpers:
    def test_comparison_rows(self):
        measured = {"Hist_AP": {1: 0.8, 2: 0.9, 3: 0.95}}
        rows = paper.comparison_rows(measured, paper.PAPER_TABLE4)
        assert len(rows) == 3
        model, k, got, ref, delta = rows[2]
        assert model == "Hist_AP" and k == 3
        assert delta == pytest.approx(got - ref)

    def test_format_comparison(self):
        measured = {"Hist_AP": {1: 0.8, 2: 0.9, 3: 0.95}}
        text = paper.format_comparison(measured, paper.PAPER_TABLE4,
                                       "Table 4")
        assert "Hist_AP" in text
        assert "paper" in text

    def test_missing_models_skipped(self):
        rows = paper.comparison_rows({}, paper.PAPER_TABLE4)
        assert rows == []
