"""Tests for figure data generation."""

import pytest

from repro.experiments import figures


class TestCdfPoints:
    def test_simple(self):
        points = figures.cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_weighted(self):
        points = figures.cdf_points([1.0, 2.0], weights=[1.0, 3.0])
        assert points[0][1] == pytest.approx(0.25)
        assert points[-1][1] == pytest.approx(1.0)

    def test_empty(self):
        assert figures.cdf_points([]) == []


class TestFig2(object):
    def test_distribution_shape(self, small_scenario):
        dist = figures.fig2_bytes_by_distance(small_scenario, 0, 24)
        assert dist
        assert sum(dist.values()) == pytest.approx(1.0)
        # paper: most bytes from nearby ASes, ~98% within 3 hops
        close = sum(v for d, v in dist.items() if d <= 3)
        assert close > 0.9
        assert dist.get(1, 0.0) > 0.35


class TestFig3:
    def test_spread_structure(self, small_scenario):
        groups = figures.fig3_link_spread(small_scenario, 0, 24)
        assert 1 in groups
        for points in groups.values():
            spreads = [s for s, _c in points]
            assert all(s >= 1 for s in spreads)
            cums = [c for _s, c in points]
            assert cums == sorted(cums)

    def test_one_hop_sprays_more(self, small_scenario):
        """Paper Figure 3's surprise: closer ASes spray over more links."""
        groups = figures.fig3_link_spread(small_scenario, 0, 72)

        def weighted_median(points):
            for spread, cum in points:
                if cum >= 0.5:
                    return spread
            return points[-1][0]

        if 1 in groups and 3 in groups:
            assert weighted_median(groups[1]) >= weighted_median(groups[3])


class TestFig5:
    def test_oracle_curves(self, small_result):
        curves = figures.fig5_oracle_accuracy_vs_k(
            small_result.overall_actuals, ks=(1, 2, 3, 10, 1000))
        assert set(curves) == {"Oracle_A", "Oracle_AP", "Oracle_AL"}
        for points in curves.values():
            accs = [a for _k, a in points]
            assert accs == sorted(accs)          # monotone in k
            assert accs[-1] == pytest.approx(1.0)  # unrestricted = 100%

    def test_top1_meaningfully_below_one(self, small_result):
        curves = figures.fig5_oracle_accuracy_vs_k(
            small_result.overall_actuals, ks=(1,))
        assert curves["Oracle_AP"][0][1] < 0.98


class TestFig6And7:
    def test_first_outage_curve(self):
        points = figures.fig6_first_outage_curve(list(range(200)),
                                                 horizon_days=365, seed=1)
        fracs = [f for _d, f in points]
        assert fracs == sorted(fracs)
        # paper: ~80% of links fail at least once in the year
        assert 0.55 < fracs[-1] < 0.95

    def test_last_outage_curve(self):
        points = figures.fig7_last_outage_curve(list(range(200)),
                                                horizon_days=365, seed=1)
        fracs = [f for _d, f in points]
        assert fracs == sorted(fracs)
        # paper: about a third of links failed within the last ~50 days
        at_50 = dict(points)[50]
        assert 0.1 < at_50 < 0.7


class TestTukeySummary:
    def test_quartiles(self):
        summary = figures.tukey_summary(list(range(1, 101)))
        assert summary.q1 == pytest.approx(25.75)
        assert summary.median == pytest.approx(50.5)
        assert summary.q3 == pytest.approx(75.25)
        assert summary.outliers == ()

    def test_whiskers_clip_outliers(self):
        values = [10.0] * 20 + [11.0] * 20 + [12.0] * 20 + [100.0]
        summary = figures.tukey_summary(values)
        assert summary.whisker_high <= 12.0
        assert summary.outliers == (100.0,)

    def test_single_value(self):
        summary = figures.tukey_summary([5.0])
        assert summary.median == 5.0
        assert summary.whisker_low == summary.whisker_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            figures.tukey_summary([])


class TestAppendixSweeps:
    def test_fig9_window_sweep(self, small_scenario):
        points = figures.fig9_training_window_sweep(
            small_scenario, train_lengths=(2, 6), test_starts=(8, 10),
            test_days=2)
        assert len(points) == 2
        for point in points:
            assert 0.0 <= point.min <= point.mean <= point.max <= 1.0

    def test_fig11_sensitivity(self, small_scenario):
        out = figures.fig11_outage_sensitivity(small_scenario, n_windows=3,
                                               train_days=6)
        assert out["overall"]
        for values in out.values():
            assert all(0.0 <= v <= 1.0 for v in values)
