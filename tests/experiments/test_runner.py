"""Tests for the evaluation runner (the §5 methodology)."""

import pytest

from repro.experiments import EvaluationRunner, WindowSpec


class TestWindowSpec:
    def test_hours(self):
        w = WindowSpec(train_start_day=2, train_days=10, test_days=3)
        assert w.train_hours == (48, 288)
        assert w.test_hours == (288, 360)


class TestEvaluationResult:
    def test_blocks_have_all_models(self, small_result):
        expected = {"Oracle_A", "Oracle_AP", "Oracle_AL", "Hist_A",
                    "Hist_AP", "Hist_AL", "Hist_AL+G", "Hist_AP/AL/A",
                    "Hist_AL/AP/A"}
        assert expected <= set(small_result.overall.rows)

    def test_accuracies_in_unit_interval(self, small_result):
        for block in (small_result.overall, small_result.outages_all,
                      small_result.outages_seen,
                      small_result.outages_unseen):
            for per_k in block.rows.values():
                for acc in per_k.values():
                    assert 0.0 <= acc <= 1.0

    def test_accuracy_monotone_in_k(self, small_result):
        for per_k in small_result.overall.rows.values():
            assert per_k[1] <= per_k[2] <= per_k[3]

    def test_oracle_dominates_matching_hist(self, small_result):
        rows = small_result.overall.rows
        for fs in ("A", "AP", "AL"):
            for k in (1, 2, 3):
                assert rows[f"Oracle_{fs}"][k] >= rows[f"Hist_{fs}"][k] - 1e-9

    def test_finer_oracles_beat_coarser(self, small_result):
        rows = small_result.overall.rows
        assert rows["Oracle_AP"][3] >= rows["Oracle_A"][3]

    def test_overall_accuracy_is_high(self, small_result):
        """Headline of paper Table 4: AP/AL models above ~90% at k=3."""
        rows = small_result.overall.rows
        assert rows["Hist_AP"][3] > 0.9
        assert rows["Hist_AP/AL/A"][3] > 0.9

    def test_outage_accuracy_lower_than_overall(self, small_result):
        """Paper Tables 4 vs 5: withdrawals are the hard case."""
        if small_result.outages_all.total_bytes == 0:
            pytest.skip("no outage-affected bytes in this window")
        overall = small_result.overall.rows["Hist_AP"][1]
        outage = small_result.outages_all.rows["Hist_AP"][1]
        assert outage < overall

    def test_stats_consistent(self, small_result):
        stats = small_result.stats
        assert stats["outage_bytes"] == pytest.approx(
            stats["seen_bytes"] + stats["unseen_bytes"])
        assert 0.0 <= stats["unseen_fraction"] <= 1.0
        assert stats["total_bytes"] > 0

    def test_overall_actuals_populated(self, small_result):
        assert len(small_result.overall_actuals) > 100

    def test_best_model_helper(self, small_result):
        best = small_result.overall.best_model(3)
        assert not best.startswith("Oracle")


class TestRunnerMechanics:
    def test_window_must_fit_horizon(self, small_scenario):
        runner = EvaluationRunner(small_scenario)
        with pytest.raises(ValueError):
            runner.run(WindowSpec(0, 21, 7))  # horizon is 14 days

    def test_collect_window_cached(self, small_scenario):
        runner = EvaluationRunner(small_scenario)
        a = runner.collect_window(0, 24)
        b = runner.collect_window(0, 24)
        assert a is b

    def test_naive_bayes_opt_in(self, small_scenario):
        runner = EvaluationRunner(small_scenario)
        result = runner.run(WindowSpec(0, 4, 2), include_naive_bayes=True)
        assert "NB_A" in result.overall.rows
        assert "NB_AL" in result.overall.rows
        assert "Hist_AL/NB_AL" in result.overall.rows

    def test_run_staleness_shape(self, small_scenario):
        runner = EvaluationRunner(small_scenario)
        out = runner.run_staleness(train_start_day=0, train_days=8,
                                   max_offset_days=3)
        assert set(out) == {0, 1, 2}
        for rows in out.values():
            assert "Hist_AP/AL/A" in rows
            assert set(rows["Hist_AP/AL/A"]) == {1, 2, 3}
