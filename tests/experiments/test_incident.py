"""Tests for the §2 incident replay."""

import pytest

from repro.bgp import AdvertisementState
from repro.experiments import build_incident_world, replay_incident


@pytest.fixture(scope="module")
def world():
    return build_incident_world(seed=0)


@pytest.fixture(scope="module")
def blind(world):
    return replay_incident(world, with_tipsy=False)


@pytest.fixture(scope="module")
def guided(world):
    return replay_incident(world, with_tipsy=True)


class TestWorld:
    def test_link_layout(self, world):
        assert world.wan.link(world.i1).capacity_gbps == 400.0
        assert world.wan.link(world.i2).capacity_gbps == 400.0
        assert world.wan.link(world.i3).capacity_gbps == 100.0
        assert world.wan.link(world.i4).capacity_gbps == 100.0
        assert world.wan.link(world.i1).metro == world.wan.link(world.i2).metro
        assert world.wan.link(world.i3).metro == world.wan.link(world.i4).metro

    def test_pre_incident_traffic_on_l1_pair(self, world):
        state = AdvertisementState(world.wan)
        entries = world.entries_for_hour(12, state)
        links = {e.link_id for e in entries}
        assert links == {world.i1, world.i2}

    def test_surge_raises_demand(self, world):
        before = world.demand_gbps(world.surge_start_hour - 1)
        during = world.demand_gbps(world.surge_start_hour)
        assert during > before + world.surge_gbps * 0.9


class TestBlindCascade:
    def test_cascade_order_matches_paper(self, blind, world):
        withdraws = [a for a in blind.actions if a.kind == "withdraw"]
        sequence = [a.link_id for a in withdraws[:4]]
        assert sequence[0] == world.i1
        assert sequence[1] == world.i2
        assert set(sequence[2:4]) == {world.i3, world.i4}

    def test_three_rounds(self, blind):
        assert blind.withdrawal_rounds == 3

    def test_i3_i4_overload_hard(self, blind, world):
        assert blind.max_utilization[world.i3] > 1.0
        assert blind.max_utilization[world.i4] > 1.0

    def test_eventual_reannouncement(self, blind):
        assert any(a.kind == "reannounce" for a in blind.actions)


class TestGuidedMitigation:
    def test_single_coordinated_round(self, guided):
        assert guided.withdrawal_rounds == 1
        kinds = {a.kind for a in guided.actions}
        assert "withdraw-coordinated" in kinds

    def test_coordinated_set_is_all_four(self, guided, world):
        coordinated = {a.link_id for a in guided.actions
                       if a.kind == "withdraw-coordinated"}
        assert coordinated == {world.i1, world.i2, world.i3, world.i4}

    def test_no_cascade_overloads(self, guided, world):
        # I2..I4 never exceed the congestion threshold under guidance
        for link in (world.i2, world.i3, world.i4):
            assert guided.max_utilization.get(link, 0.0) <= 0.9

    def test_fewer_congested_hours_than_blind(self, guided, blind):
        assert guided.congested_link_hours < blind.congested_link_hours
