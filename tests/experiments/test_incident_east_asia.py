"""Tests for the §6 East Asia incident replay."""

import pytest

from repro.experiments import build_east_asia_world, replay_east_asia


@pytest.fixture(scope="module")
def world():
    return build_east_asia_world(seed=0)


@pytest.fixture(scope="module")
def report(world):
    return replay_east_asia(world)


class TestEastAsiaIncident:
    def test_two_prefixes_withdrawn(self, report):
        """'CMS withdrew two /24 prefixes.'"""
        assert len(report.withdrawn_prefixes) == 2
        assert report.withdrawal_hour is not None

    def test_traffic_shifts_to_three_links(self, report, world):
        """'TIPSY identified three links that the traffic would shift
        to' — and it actually did."""
        assert set(report.actual_shift_links) == {
            world.alt_same_peer, world.alt_other_peer,
            world.alt_other_country}

    def test_shift_spans_two_transit_providers(self, report, world):
        peers = {world.wan.link(l).peer_asn
                 for l in report.actual_shift_links}
        assert len(peers) == 2

    def test_shift_geography_matches_paper(self, report, world):
        """'two in the same metropolitan region and one in a different
        country in East Asia'."""
        metros = [world.wan.link(l).metro for l in report.actual_shift_links]
        countries = {world.wan.metros.get(m).country for m in metros}
        assert metros.count("hkg") == 2
        assert len(countries) == 2

    def test_prediction_covers_actual(self, report):
        """'traffic shifted as predicted to those links'."""
        assert set(report.actual_shift_links) <= set(report.predicted_links)

    def test_alternates_had_capacity(self, report):
        """'All three links had sufficient capacity to absorb the
        traffic.'"""
        assert report.max_alt_utilization < 0.85

    def test_reannounced_two_hours_later(self, report):
        """'2 hours after the withdrawals, traffic levels had dropped
        sufficiently that the prefixes were re-announced.'"""
        assert report.hours_until_reannounce == 2
        reannounced = {a.dest_prefix_id for a in report.actions
                       if a.kind == "reannounce"}
        assert reannounced == set(report.withdrawn_prefixes)

    def test_no_cascade(self, report, world):
        """Unlike §2, this incident resolves without further rounds."""
        withdraw_hours = {a.sample_index for a in report.actions
                          if a.kind.startswith("withdraw")}
        assert len(withdraw_hours) == 1
