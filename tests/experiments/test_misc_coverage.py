"""Coverage for smaller experiment-layer surfaces."""


from repro.experiments import (
    EvaluationRunner,
    Scenario,
    ScenarioParams,
    WindowSpec,
    figures,
    tables,
)
from repro.experiments.incident import build_incident_world, train_incident_model


class TestScenarioPresets:
    def test_medium_preset_builds(self):
        scenario = Scenario(ScenarioParams.medium(seed=3, horizon_days=7))
        summary = scenario.wan.summary()
        assert summary["links"] > 150
        assert len(scenario.traffic) > 2000
        # streams without error
        cols = next(iter(scenario.stream(0, 1)))
        assert len(cols.flow_rows) > 0

    def test_presets_differ_in_scale(self):
        small = ScenarioParams.small(seed=1)
        medium = ScenarioParams.medium(seed=1)
        assert medium.traffic.n_flows > small.traffic.n_flows
        assert medium.topology.n_stub > small.topology.n_stub


class TestRunnerOptions:
    def test_keep_top_truncates_models(self, small_scenario,
                                       trained_counts):
        runner = EvaluationRunner(small_scenario)
        models = runner.build_models(trained_counts, keep_top=2)
        hist_ap = next(m for m in models if m.name == "Hist_AP")
        context = next(iter(trained_counts.actuals()))
        assert len(hist_ap.predict(context, 10)) <= 2

    def test_no_nb_by_default(self, small_scenario, trained_counts):
        runner = EvaluationRunner(small_scenario)
        names = {m.name for m in runner.build_models(trained_counts)}
        assert not any(n.startswith("NB") for n in names)


class TestFigureHelpers:
    def test_fig10_helper_wraps_runner(self, small_scenario):
        curve = figures.fig10_staleness_curve(
            small_scenario, train_days=10, horizon_days=13)
        assert set(curve) == {0, 1, 2}
        for per_k in curve.values():
            assert set(per_k) == {1, 2, 3}


class TestTableFormatting:
    def test_cost_row_formatted(self):
        row = tables.CostRow("Hist_AP", 0.5, 1.25, 1000)
        text = row.formatted()
        assert "Hist_AP" in text
        assert "0.500s" in text
        assert "1000" in text

    def test_accuracy_row_formatted_widths(self):
        row = tables.AccuracyRow("Hist_AP", 0.5, 0.75, 0.99999)
        text = row.formatted()
        assert "50.00" in text and "100.00" in text


class TestIncidentTraining:
    def test_train_incident_model_learns_l1_pair(self):
        world = build_incident_world(seed=0, n_flows=40)
        model = train_incident_model(world, train_hours=48)
        context = world.flows[0][0]
        preds = model.predict(context, 2)
        assert {p.link_id for p in preds} <= {world.i1, world.i2}
        # and with both L1 links withdrawn, geography completes to L2
        shifted = model.predict(context, 2,
                                unavailable=frozenset({world.i1, world.i2}))
        assert {p.link_id for p in shifted} <= {world.i3, world.i4}
