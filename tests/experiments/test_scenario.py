"""Tests for scenario assembly and streaming."""

import numpy as np
import pytest

from repro.bgp import AdvertisementState
from repro.experiments import Scenario, ScenarioParams


class TestAssembly:
    def test_components_consistent(self, small_scenario):
        sc = small_scenario
        assert sc.wan.metros is sc.metros
        assert len(sc.flow_contexts) == len(sc.traffic)
        # every flow's context matches its spec through the encoders
        for flow, context in zip(sc.traffic.flows[:50], sc.flow_contexts[:50]):
            assert context.src_asn == flow.src_asn
            assert context.src_prefix == flow.src_prefix_id
            region = sc.encoders.region.decode(context.dest_region)
            assert region == flow.dest_region

    def test_deterministic_build(self):
        a = Scenario(ScenarioParams.small(seed=5, horizon_days=7))
        b = Scenario(ScenarioParams.small(seed=5, horizon_days=7))
        assert a.wan.summary() == b.wan.summary()
        assert a.outage_schedule == b.outage_schedule
        assert [f.base_rate_mbps for f in a.traffic.flows] == [
            f.base_rate_mbps for f in b.traffic.flows]

    def test_horizon_propagates_to_traffic(self, small_scenario):
        assert (small_scenario.params.traffic.horizon_days
                == small_scenario.params.horizon_days)


class TestStreaming:
    def test_columns_aligned(self, small_scenario):
        cols = next(iter(small_scenario.stream(0, 1)))
        n = len(cols.flow_rows)
        assert len(cols.link_ids) == n
        assert len(cols.true_bytes) == n
        assert len(cols.sampled_bytes) == n

    def test_stream_deterministic(self, small_scenario):
        a = [c.sampled_bytes.sum() for c in small_scenario.stream(0, 6)]
        b = [c.sampled_bytes.sum() for c in small_scenario.stream(0, 6)]
        assert a == b

    def test_window_bounds_validated(self, small_scenario):
        with pytest.raises(ValueError):
            list(small_scenario.stream(0, small_scenario.horizon_hours + 1))
        with pytest.raises(ValueError):
            list(small_scenario.stream(-1, 1))

    def test_outage_links_carry_nothing(self, small_scenario):
        sc = small_scenario
        outage = sc.outage_schedule[0]
        hour = outage.start_hour
        for cols in sc.stream(hour, hour + 1):
            on_link = cols.true_bytes[cols.link_ids == outage.link_id]
            assert on_link.sum() == 0.0

    def test_state_at_matches_schedule(self, small_scenario):
        sc = small_scenario
        outage = sc.outage_schedule[0]
        state = sc.state_at(outage.start_hour)
        assert outage.link_id in state.link_outages
        state_after = sc.state_at(outage.end_hour)
        active_after = sc.scheduled_down_at(outage.end_hour)
        assert (outage.link_id in state_after.link_outages) == (
            outage.link_id in active_after)

    def test_caller_state_withdrawal_respected(self, small_scenario):
        sc = small_scenario
        base = next(iter(sc.stream(0, 1)))
        # find a busy link and withdraw its top destination prefix there
        link_totals = np.bincount(base.link_ids, weights=base.true_bytes)
        hot_link = int(np.argmax(link_totals))
        state = AdvertisementState(sc.wan)
        for prefix in sc.wan.dest_prefixes:
            state.withdraw(prefix.prefix_id, hot_link)
        cols = next(iter(sc.stream(0, 1, state=state)))
        assert cols.true_bytes[cols.link_ids == hot_link].sum() == 0.0


class TestRecordViews:
    def test_ipfix_records_roundtrip(self, small_scenario):
        sc = small_scenario
        cols = next(iter(sc.stream(0, 1)))
        records = sc.ipfix_records_for(cols)
        assert sum(r.bytes for r in records) == pytest.approx(
            cols.sampled_bytes.sum())
        for record in records[:20]:
            assert record.hour == 0
            assert sc.wan.has_link(record.link_id)

    def test_agg_records_merge_contexts(self, small_scenario):
        sc = small_scenario
        cols = next(iter(sc.stream(0, 1)))
        aggs = sc.agg_records_for(cols)
        keys = [(a.context, a.link_id) for a in aggs]
        assert len(keys) == len(set(keys))
        assert sum(a.bytes for a in aggs) == pytest.approx(
            cols.sampled_bytes.sum())

    def test_traffic_entries_view(self, small_scenario):
        sc = small_scenario
        cols = next(iter(sc.stream(0, 1)))
        entries = sc.traffic_entries_for(cols)
        assert sum(e.bytes for e in entries) == pytest.approx(
            cols.sampled_bytes.sum())

    def test_risk_entries_view(self, small_scenario):
        sc = small_scenario
        cols = next(iter(sc.stream(0, 1)))
        entries = sc.risk_entries_for(cols)
        assert all(b > 0 for _l, _c, b in entries)
