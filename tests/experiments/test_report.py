"""Tests for the markdown report generator."""

import pytest

from repro.experiments import ReportOptions, WindowSpec, build_report


@pytest.fixture(scope="module")
def report(small_scenario):
    options = ReportOptions(
        window=WindowSpec(train_start_day=0, train_days=8, test_days=3))
    return build_report(small_scenario, options)


class TestReport:
    def test_has_all_sections(self, report):
        for section in ("# TIPSY reproduction report", "## World",
                        "## Headline statistics",
                        "## Table 4", "## Table 5", "## Table 6",
                        "## Table 7", "## Figure 5", "## Figure 2"):
            assert section in report

    def test_tables_include_paper_columns(self, report):
        assert "paper Top 3 %" in report
        assert "Δ top-3" in report

    def test_all_models_reported(self, report):
        for model in ("Hist_AP", "Hist_AL+G", "Hist_AP/AL/A", "Oracle_AP"):
            assert model in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                # consistent cell separators (no missing pipes)
                assert line.endswith("|"), line

    def test_figures_can_be_disabled(self, small_scenario):
        options = ReportOptions(
            window=WindowSpec(train_start_day=0, train_days=8, test_days=3),
            include_figures=False)
        text = build_report(small_scenario, options)
        assert "## Figure 5" not in text
        assert "## Table 4" in text

    def test_naive_bayes_opt_in(self, small_scenario):
        options = ReportOptions(
            window=WindowSpec(train_start_day=0, train_days=4, test_days=2),
            include_naive_bayes=True, include_figures=False)
        text = build_report(small_scenario, options)
        assert "NB_AL" in text
