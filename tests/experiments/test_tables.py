"""Tests for table row formatting."""

from repro.cms import RiskFinding
from repro.experiments import tables


class TestAccuracyRows:
    def test_paper_order_and_values(self, small_result):
        rows = tables.table4_overall(small_result)
        names = [r.model for r in rows]
        assert names == [n for n in tables.PAPER_MODEL_ORDER
                         if n in small_result.overall.rows]
        for row in rows:
            assert 0.0 <= row.top1 <= row.top2 <= row.top3 <= 1.0

    def test_all_table_builders_work(self, small_result):
        for builder in (tables.table4_overall, tables.table5_outages_all,
                        tables.table6_outages_seen,
                        tables.table7_outages_unseen,
                        tables.table9_nb_overall,
                        tables.table10_nb_outages):
            rows = builder(small_result)
            assert isinstance(rows, list)

    def test_formatted_row_alignment(self, small_result):
        rows = tables.table4_overall(small_result)
        line = rows[0].formatted()
        assert rows[0].model in line
        assert "%" not in line  # numbers only; header carries units

    def test_format_block(self, small_result):
        rows = tables.table4_overall(small_result)
        block = tables.format_block("Table 4", rows,
                                    tables.ACCURACY_HEADER)
        assert block.startswith("== Table 4 ==")
        assert len(block.splitlines()) == 2 + len(rows)


class TestRiskRows:
    def test_risk_row_rendering(self, small_scenario):
        wan = small_scenario.wan
        link = wan.links[0]
        affecting = wan.links[1]
        finding = RiskFinding(
            link_id=link.link_id, peer_asn=link.peer_asn,
            capacity_gbps=link.capacity_gbps, typical_high_hours=1,
            predicted_extra_high_hours=7,
            affecting_link_id=affecting.link_id,
            affecting_peer_asn=affecting.peer_asn,
            affecting_capacity_gbps=affecting.capacity_gbps)
        rows = tables.risk_rows([finding], wan)
        assert len(rows) == 1
        line = rows[0].formatted()
        assert link.router in line
        assert f"AS{link.peer_asn}" in line

    def test_limit(self, small_scenario):
        wan = small_scenario.wan
        link = wan.links[0]
        finding = RiskFinding(link.link_id, link.peer_asn,
                              link.capacity_gbps, 0, 1, link.link_id,
                              link.peer_asn, link.capacity_gbps)
        assert len(tables.risk_rows([finding] * 5, wan, limit=2)) == 2
