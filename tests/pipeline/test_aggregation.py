"""Tests for hourly aggregation and metadata joins."""

import pytest

from repro.pipeline import HourlyAggregator, UNKNOWN_LOCATION
from repro.telemetry import GeoIPDatabase, IpfixRecord, MetadataStore
from repro.topology import (
    MetroCatalog,
    TopologyParams,
    WANParams,
    generate_as_graph,
    generate_wan,
)
from repro.traffic import PrefixUniverse


@pytest.fixture()
def aggregator():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=3, n_transit=6, n_access=10, n_cdn=2, n_stub=20), seed=8)
    wan = generate_wan(graph, WANParams(n_regions=4, n_dest_prefixes=12),
                       seed=8)
    universe = PrefixUniverse(graph, seed=8)
    geoip = GeoIPDatabase(universe, metros, error_rate=0.0, seed=8)
    agg = HourlyAggregator(MetadataStore(wan, geoip))
    return agg, wan, universe


def record(universe, wan, hour=0, link=0, prefix_idx=0, dest=0, bytes_=1e6):
    prefix = universe.prefix(prefix_idx)
    return IpfixRecord(hour, link, prefix.prefix_id, prefix.asn, dest, bytes_)


class TestAggregation:
    def test_same_key_summed(self, aggregator):
        agg, wan, universe = aggregator
        records = [record(universe, wan, bytes_=1e6),
                   record(universe, wan, bytes_=2e6)]
        out = agg.aggregate_hour(0, records)
        assert len(out) == 1
        assert out[0].bytes == pytest.approx(3e6)

    def test_different_links_kept_apart(self, aggregator):
        agg, wan, universe = aggregator
        records = [record(universe, wan, link=0),
                   record(universe, wan, link=1)]
        out = agg.aggregate_hour(0, records)
        assert len(out) == 2

    def test_metadata_joined(self, aggregator):
        agg, wan, universe = aggregator
        out = agg.aggregate_hour(0, [record(universe, wan, dest=3)])
        rec = out[0]
        dest = wan.dest_prefix(3)
        assert agg.encoders.region.decode(rec.dest_region) == dest.region
        assert agg.encoders.service.decode(rec.dest_service) == dest.service
        prefix = universe.prefix(0)
        assert agg.encoders.location.decode(rec.src_loc) == prefix.metro

    def test_unknown_location_marked(self, aggregator):
        agg, wan, _universe = aggregator
        rogue = IpfixRecord(0, 0, 10**9, 4242, 0, 1e6)
        out = agg.aggregate_hour(0, [rogue])
        assert out[0].src_loc == UNKNOWN_LOCATION

    def test_hour_mismatch_rejected(self, aggregator):
        agg, wan, universe = aggregator
        with pytest.raises(ValueError):
            agg.aggregate_hour(1, [record(universe, wan, hour=0)])

    def test_compression_stats(self, aggregator):
        agg, wan, universe = aggregator
        records = [record(universe, wan) for _ in range(10)]
        agg.aggregate_hour(0, records)
        assert agg.stats.records_in == 10
        assert agg.stats.records_out == 1
        assert agg.stats.ratio == pytest.approx(0.1)

    def test_empty_hour(self, aggregator):
        agg, _wan, _universe = aggregator
        assert agg.aggregate_hour(5, []) == []
        assert agg.stats.ratio == 1.0

    def test_context_property(self, aggregator):
        agg, wan, universe = aggregator
        out = agg.aggregate_hour(0, [record(universe, wan)])
        rec = out[0]
        ctx = rec.context
        assert ctx.src_asn == rec.src_asn
        assert ctx.src_prefix == rec.src_prefix
        assert ctx.src_loc == rec.src_loc


class TestCorruptTelemetry:
    """Failure injection: records a collector should never emit."""

    def test_strict_raises_on_unknown_destination(self, aggregator):
        agg, wan, universe = aggregator
        bad = IpfixRecord(0, 0, universe.prefix(0).prefix_id,
                          universe.prefix(0).asn, 10**9, 1e6)
        with pytest.raises(ValueError, match="cannot aggregate"):
            agg.aggregate_hour(0, [bad])

    def test_strict_raises_on_nonpositive_bytes(self, aggregator):
        agg, wan, universe = aggregator
        bad = record(universe, wan, bytes_=-5.0)
        with pytest.raises(ValueError, match="non-positive"):
            agg.aggregate_hour(0, [bad])

    def test_lenient_drops_and_counts(self, aggregator):
        agg, wan, universe = aggregator
        agg.strict = False
        good = record(universe, wan)
        bad_dest = IpfixRecord(0, 0, universe.prefix(0).prefix_id,
                               universe.prefix(0).asn, 10**9, 1e6)
        bad_bytes = record(universe, wan, bytes_=0.0)
        out = agg.aggregate_hour(0, [good, bad_dest, bad_bytes])
        assert len(out) == 1
        assert out[0].bytes == pytest.approx(1e6)
        assert agg.stats.records_dropped == 2
        assert agg.stats.records_in == 3

    def test_lenient_hour_mismatch_still_raises(self, aggregator):
        # hour chunking is a pipeline invariant, not telemetry noise
        agg, wan, universe = aggregator
        agg.strict = False
        with pytest.raises(ValueError, match="chunk"):
            agg.aggregate_hour(1, [record(universe, wan, hour=0)])


class TestBatchAggregation:
    """The vectorised path must match the per-record walk exactly."""

    def _mixed_records(self, universe, wan):
        return (
            [record(universe, wan, link=l, prefix_idx=p, dest=d,
                    bytes_=1e5 * (1 + l + p + d))
             for l in range(2) for p in range(5) for d in range(4)]
            + [record(universe, wan, bytes_=1e5)] * 3
            + [IpfixRecord(0, 1, 10**9, 4242, 2, 5e5)]  # unknown location
        )

    def test_batch_matches_serial(self, aggregator):
        agg, wan, universe = aggregator
        records = self._mixed_records(universe, wan)
        serial = agg.aggregate_hour(0, list(records))
        batch_agg = HourlyAggregator(agg.metadata)
        batch = batch_agg.aggregate_hour_batch(0, list(records))
        assert batch == serial  # same records, same order
        assert batch_agg.stats == agg.stats
        # encoder code assignments must also match (first-seen order)
        assert batch_agg.encoders.region.decode(batch[0].dest_region) == \
            agg.encoders.region.decode(serial[0].dest_region)

    def test_columns_to_records_round_trip(self, aggregator):
        agg, wan, universe = aggregator
        records = self._mixed_records(universe, wan)
        serial = agg.aggregate_hour(0, list(records))
        columns_agg = HourlyAggregator(agg.metadata)
        columns_agg.aggregate_hour_batch(0, [])  # empty hour is fine
        batch = columns_agg.aggregate_hour_batch(0, list(records))
        assert [r.context for r in batch] == [r.context for r in serial]
        assert all(isinstance(r.bytes, float) for r in batch)

    def test_batch_strict_raises_same_error(self, aggregator):
        agg, wan, universe = aggregator
        bad_dest = IpfixRecord(0, 0, universe.prefix(0).prefix_id,
                               universe.prefix(0).asn, 10**9, 1e6)
        bad_bytes = record(universe, wan, bytes_=-5.0)
        for bad, pattern in ((bad_dest, "cannot aggregate"),
                             (bad_bytes, "non-positive")):
            records = [record(universe, wan), bad, record(universe, wan)]
            serial_agg = HourlyAggregator(agg.metadata)
            with pytest.raises(ValueError) as serial_exc:
                serial_agg.aggregate_hour(0, list(records))
            batch_agg = HourlyAggregator(agg.metadata)
            with pytest.raises(ValueError, match=pattern) as batch_exc:
                batch_agg.aggregate_hour_batch(0, list(records))
            assert str(batch_exc.value) == str(serial_exc.value)

    def test_batch_lenient_drops_and_counts(self, aggregator):
        agg, wan, universe = aggregator
        agg.strict = False
        good = record(universe, wan)
        bad_dest = IpfixRecord(0, 0, universe.prefix(0).prefix_id,
                               universe.prefix(0).asn, 10**9, 1e6)
        bad_bytes = record(universe, wan, bytes_=0.0)
        out = agg.aggregate_hour_batch(0, [good, bad_dest, bad_bytes, good])
        assert len(out) == 1
        assert out[0].bytes == pytest.approx(2e6)
        assert agg.stats.records_dropped == 2
        assert agg.stats.records_in == 4
        assert agg.stats.records_out == 1

    def test_batch_hour_mismatch_rejected(self, aggregator):
        agg, wan, universe = aggregator
        agg.strict = False  # hour chunking violations raise regardless
        with pytest.raises(ValueError, match="chunk"):
            agg.aggregate_hour_batch(1, [record(universe, wan, hour=0)])

    def test_ratio_with_zero_input(self):
        from repro.pipeline import CompressionStats
        stats = CompressionStats()
        assert stats.records_in == 0
        assert stats.ratio == 1.0  # no input: nothing was compressed
