"""Tests for flow-trace export/import."""

import pytest

from repro.pipeline import counts_from_trace, read_trace, write_trace
from repro.telemetry import GeoIPDatabase, IpfixRecord, MetadataStore
from repro.topology import (
    MetroCatalog,
    TopologyParams,
    WANParams,
    generate_as_graph,
    generate_wan,
)
from repro.traffic import PrefixUniverse


@pytest.fixture(scope="module")
def world():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=3, n_transit=6, n_access=10, n_cdn=2, n_stub=20), seed=12)
    wan = generate_wan(graph, WANParams(n_regions=4, n_dest_prefixes=12),
                       seed=12)
    universe = PrefixUniverse(graph, seed=12)
    geoip = GeoIPDatabase(universe, metros, error_rate=0.0, seed=12)
    return wan, universe, MetadataStore(wan, geoip)


def records(universe, n=20, hour=0):
    out = []
    for i in range(n):
        prefix = universe.prefix(i % len(universe._prefixes))
        out.append(IpfixRecord(hour + i % 3, i % 4, prefix.prefix_id,
                               prefix.asn, i % 5, 1000.0 * (i + 1)))
    return out


class TestRoundtrip:
    def test_write_read_roundtrip(self, world, tmp_path):
        _wan, universe, _meta = world
        original = records(universe)
        path = tmp_path / "trace.csv"
        count = write_trace(path, original)
        assert count == len(original)
        loaded = list(read_trace(path))
        assert loaded == original

    def test_empty_trace(self, world, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace(path, [])
        assert list(read_trace(path)) == []

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError, match="not a flow trace"):
            list(read_trace(path))

    def test_malformed_row_rejected(self, world, tmp_path):
        _wan, universe, _meta = world
        path = tmp_path / "trace.csv"
        write_trace(path, records(universe, n=2))
        with open(path, "a") as handle:
            handle.write("1,2,3\n")
        with pytest.raises(ValueError, match="line 4"):
            list(read_trace(path))

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "hour,link_id,src_prefix_id,src_asn,dest_prefix_id,bytes\n"
            "1,2,3,4,5,lots\n")
        with pytest.raises(ValueError, match="line 2"):
            list(read_trace(path))


class TestTraining:
    def test_counts_from_trace(self, world, tmp_path):
        _wan, universe, meta = world
        path = tmp_path / "trace.csv"
        original = records(universe, n=30)
        write_trace(path, original)
        counts = counts_from_trace(path, meta)
        assert counts.total_bytes() == pytest.approx(
            sum(r.bytes for r in original))
        assert len(counts) > 0

    def test_window_filter(self, world, tmp_path):
        _wan, universe, meta = world
        path = tmp_path / "trace.csv"
        original = records(universe, n=30)
        write_trace(path, original)
        counts = counts_from_trace(path, meta, start_hour=1, end_hour=2)
        expected = sum(r.bytes for r in original if r.hour == 1)
        assert counts.total_bytes() == pytest.approx(expected)

    def test_trained_model_predicts(self, world, tmp_path):
        from repro.core import FEATURES_AP, HistoricalModel

        _wan, universe, meta = world
        path = tmp_path / "trace.csv"
        write_trace(path, records(universe, n=30))
        counts = counts_from_trace(path, meta)
        model = HistoricalModel(FEATURES_AP)
        counts.fit([model])
        context = next(iter(counts.actuals()))
        assert model.predict(context, 3)

    def test_shared_aggregator_keeps_encodings(self, world, tmp_path):
        from repro.pipeline import HourlyAggregator

        _wan, universe, meta = world
        aggregator = HourlyAggregator(meta)
        p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
        write_trace(p1, records(universe, n=10))
        write_trace(p2, records(universe, n=10))
        c1 = counts_from_trace(p1, meta, aggregator=aggregator)
        c2 = counts_from_trace(p2, meta, aggregator=aggregator)
        # identical traces through one aggregator yield identical keys
        assert set(c1.counts) == set(c2.counts)
