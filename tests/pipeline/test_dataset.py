"""Tests for streaming dataset plumbing."""

import numpy as np
import pytest

from repro.pipeline import AggRecord, LinkByteTracker, fanout


def rec(hour, link, bytes_):
    return AggRecord(hour, link, 100, 5, 0, 0, 0, bytes_)


class TestLinkByteTracker:
    def test_consume_hour(self):
        tracker = LinkByteTracker([10, 11], n_hours=4)
        tracker.consume_hour(1, [rec(1, 10, 5.0), rec(1, 10, 3.0),
                                 rec(1, 11, 2.0)])
        assert tracker.bytes_for(10)[1] == 8.0
        assert tracker.bytes_for(11)[1] == 2.0
        assert tracker.bytes_for(10)[0] == 0.0

    def test_unknown_link_ignored(self):
        tracker = LinkByteTracker([10], n_hours=2)
        tracker.consume_hour(0, [rec(0, 99, 5.0)])
        assert tracker.matrix.sum() == 0.0

    def test_add_bulk(self):
        tracker = LinkByteTracker([10, 11], n_hours=2)
        tracker.add_bulk(0, np.array([10, 11, 10]),
                         np.array([1.0, 2.0, 3.0]))
        assert tracker.bytes_for(10)[0] == 4.0
        assert tracker.bytes_for(11)[0] == 2.0

    def test_utilization(self):
        tracker = LinkByteTracker([10], n_hours=1)
        capacity_gbps = 1.0
        full_hour_bytes = capacity_gbps * 1e9 / 8.0 * 3600.0
        tracker.consume_hour(0, [rec(0, 10, full_hour_bytes / 2)])
        assert tracker.utilization(10, capacity_gbps)[0] == pytest.approx(0.5)

    def test_row_index(self):
        tracker = LinkByteTracker([7, 3], n_hours=1)
        assert tracker.row_index(7) == 0
        assert tracker.row_index(3) == 1


class TestFanout:
    def test_all_consumers_fed(self):
        calls = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def consume_hour(self, hour, records):
                calls.append((self.name, hour, len(records)))

        fanout(3, [rec(3, 10, 1.0)], [Probe("a"), Probe("b")])
        assert calls == [("a", 3, 1), ("b", 3, 1)]


class TestColumnarTracker:
    @staticmethod
    def cols(hour, links, bytes_):
        from repro.pipeline import AggColumns

        n = len(links)
        zeros = np.zeros(n, dtype=np.int64)
        return AggColumns(hour, np.array(links, dtype=np.int64), zeros,
                          zeros, zeros, zeros, zeros, np.array(bytes_))

    def test_consume_columns_matches_consume_hour(self):
        columnar = LinkByteTracker([10, 11], n_hours=4)
        reference = LinkByteTracker([10, 11], n_hours=4)
        columns = self.cols(1, [10, 10, 11, 99], [5.0, 3.0, 2.0, 7.0])
        columnar.consume_columns(columns)
        reference.consume_hour(1, columns.to_records())
        assert np.array_equal(columnar.matrix, reference.matrix)
        assert columnar.bytes_for(10)[1] == 8.0  # unknown link 99 ignored

    def test_merge(self):
        a = LinkByteTracker([10, 11], n_hours=2)
        b = LinkByteTracker([10, 11], n_hours=2)
        a.consume_columns(self.cols(0, [10], [1.0]))
        b.consume_columns(self.cols(1, [11], [2.0]))
        a.merge(b)
        assert a.bytes_for(10)[0] == 1.0
        assert a.bytes_for(11)[1] == 2.0

    def test_merge_rejects_mismatched_shapes(self):
        a = LinkByteTracker([10, 11], n_hours=2)
        with pytest.raises(ValueError, match="links"):
            a.merge(LinkByteTracker([10, 12], n_hours=2))
        with pytest.raises(ValueError, match="horizons"):
            a.merge(LinkByteTracker([10, 11], n_hours=3))
