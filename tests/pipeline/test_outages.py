"""Tests for outage scheduling and inference."""

import numpy as np
import pytest

from repro.pipeline import (
    Outage,
    OutageInference,
    OutageParams,
    first_outage_days,
    last_outage_days_before,
    schedule_outages,
)


class TestOutage:
    def test_duration_and_activity(self):
        outage = Outage(3, 10, 14)
        assert outage.duration_hours == 4
        assert outage.active_at(10)
        assert outage.active_at(13)
        assert not outage.active_at(14)
        assert not outage.active_at(9)


class TestScheduler:
    def test_deterministic(self):
        links = list(range(50))
        a = schedule_outages(links, 24 * 60, seed=3)
        b = schedule_outages(links, 24 * 60, seed=3)
        assert a == b

    def test_no_overlap_per_link(self):
        outages = schedule_outages(list(range(40)), 24 * 120,
                                   OutageParams(daily_hazard=0.1), seed=1)
        by_link = {}
        for outage in outages:
            by_link.setdefault(outage.link_id, []).append(outage)
        for link_outages in by_link.values():
            link_outages.sort(key=lambda o: o.start_hour)
            for a, b in zip(link_outages, link_outages[1:]):
                assert a.end_hour <= b.start_hour

    def test_within_horizon(self):
        horizon = 24 * 30
        for outage in schedule_outages(list(range(40)), horizon, seed=2):
            assert 0 <= outage.start_hour < outage.end_hour <= horizon

    def test_year_long_coverage_matches_paper(self):
        """~80% of links see at least one outage per year (Figure 6)."""
        links = list(range(400))
        params = OutageParams(daily_hazard=0.0044, flaky_fraction=0.01)
        outages = schedule_outages(links, 24 * 365, params, seed=5)
        links_hit = {o.link_id for o in outages}
        assert 0.6 < len(links_hit) / len(links) < 0.95

    def test_flaky_links_fail_repeatedly(self):
        params = OutageParams(daily_hazard=0.001, flaky_fraction=0.2,
                              flaky_daily_hazard=0.5)
        outages = schedule_outages(list(range(100)), 24 * 60, params, seed=7)
        counts = {}
        for outage in outages:
            counts[outage.link_id] = counts.get(outage.link_id, 0) + 1
        assert max(counts.values()) >= 3


class TestInference:
    def _matrix(self):
        # 3 links x 10 hours; link 1 down hours 4-6; link 2 never carries
        m = np.ones((3, 10))
        m[1, 4:7] = 0.0
        m[2, :] = 0.0
        return m

    def test_paper_rule(self):
        inf = OutageInference([10, 11, 12], self._matrix())
        assert not inf.is_down(0, 5)
        assert inf.is_down(1, 5)
        # a link that never carried traffic is not "down", just unused
        assert not inf.is_down(2, 5)

    def test_down_links_at(self):
        inf = OutageInference([10, 11, 12], self._matrix())
        assert inf.down_links_at(5) == frozenset({11})
        assert inf.down_links_at(0) == frozenset()

    def test_intervals(self):
        inf = OutageInference([10, 11, 12], self._matrix())
        intervals = inf.intervals()
        assert intervals == [Outage(11, 4, 7)]

    def test_duration_filter(self):
        inf = OutageInference([10, 11, 12], self._matrix())
        assert inf.intervals(min_hours=4) == []
        assert inf.intervals(min_hours=1, max_hours=2) == []
        assert inf.intervals(min_hours=3, max_hours=3) == [Outage(11, 4, 7)]

    def test_links_with_outage_window(self):
        inf = OutageInference([10, 11, 12], self._matrix())
        assert inf.links_with_outage(0, 10) == frozenset({11})
        assert inf.links_with_outage(0, 4) == frozenset()
        assert inf.links_with_outage(6, 8) == frozenset({11})

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            OutageInference([1, 2], np.ones((3, 5)))


class TestFigureHelpers:
    def test_first_outage_days(self):
        outages = [Outage(1, 30, 40), Outage(1, 200, 210), Outage(2, 100, 110)]
        firsts = first_outage_days(outages)
        assert firsts == {1: 1, 2: 4}

    def test_last_outage_days_before(self):
        outages = [Outage(1, 24 * 3, 24 * 3 + 5), Outage(1, 24 * 10, 24 * 10 + 5)]
        lasts = last_outage_days_before(outages, reference_day=20)
        assert lasts == {1: 10}

    def test_last_outage_ignores_future(self):
        outages = [Outage(1, 24 * 30, 24 * 30 + 2)]
        assert last_outage_days_before(outages, reference_day=10) == {}
