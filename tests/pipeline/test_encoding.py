"""Tests for ordinal encoding."""

import pytest

from repro.pipeline import EncoderSet, OrdinalEncoder


class TestOrdinalEncoder:
    def test_first_seen_order(self):
        enc = OrdinalEncoder()
        assert enc.encode("sea") == 0
        assert enc.encode("lon") == 1
        assert enc.encode("sea") == 0

    def test_decode_roundtrip(self):
        enc = OrdinalEncoder()
        for value in ("a", "b", "c"):
            assert enc.decode(enc.encode(value)) == value

    def test_decode_unknown_raises(self):
        enc = OrdinalEncoder()
        with pytest.raises(IndexError):
            enc.decode(0)
        enc.encode("x")
        with pytest.raises(IndexError):
            enc.decode(5)
        with pytest.raises(IndexError):
            enc.decode(-1)

    def test_encode_if_known(self):
        enc = OrdinalEncoder()
        assert enc.encode_if_known("x") is None
        enc.encode("x")
        assert enc.encode_if_known("x") == 0

    def test_len_and_contains(self):
        enc = OrdinalEncoder()
        enc.encode("a")
        enc.encode("b")
        assert len(enc) == 2
        assert "a" in enc
        assert "z" not in enc

    def test_values(self):
        enc = OrdinalEncoder()
        enc.encode("a")
        enc.encode("b")
        assert enc.values() == ("a", "b")


class TestEncoderSet:
    def test_sizes(self):
        encoders = EncoderSet()
        encoders.location.encode("sea")
        encoders.region.encode("sea-region")
        encoders.region.encode("lon-region")
        sizes = encoders.sizes()
        assert sizes["source_location"] == 1
        assert sizes["dest_region"] == 2
        assert sizes["dest_service"] == 0
