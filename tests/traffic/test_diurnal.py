"""Tests for diurnal/weekly traffic modulation."""

import numpy as np
import pytest

from repro.traffic import (
    diurnal_factor,
    diurnal_factors_vec,
    local_hour,
    tz_offset_hours,
    weekday,
)


class TestTimezone:
    def test_greenwich(self):
        assert tz_offset_hours(0.0) == 0

    def test_seattle_region(self):
        assert tz_offset_hours(-122.33) == -8

    def test_tokyo_region(self):
        assert tz_offset_hours(139.69) == 9

    def test_local_hour_wraps(self):
        assert local_hour(0, -8) == 16
        assert local_hour(23, 9) == 8

    def test_weekday_cycles_from_monday(self):
        assert weekday(0) == 0
        assert weekday(24 * 5) == 5
        assert weekday(24 * 7) == 0


class TestDiurnalFactor:
    def test_peak_at_peak_hour(self):
        peak = diurnal_factor(14.0, 14.0, 0.5, False, 1.0)
        trough = diurnal_factor(2.0, 14.0, 0.5, False, 1.0)
        assert peak == pytest.approx(1.5)
        assert trough == pytest.approx(0.5)

    def test_weekend_factor_applies(self):
        weekdayf = diurnal_factor(14.0, 14.0, 0.3, False, 0.5)
        weekendf = diurnal_factor(14.0, 14.0, 0.3, True, 0.5)
        assert weekendf == pytest.approx(weekdayf * 0.5)

    def test_floor(self):
        f = diurnal_factor(2.0, 14.0, 0.99, True, 0.01, floor=0.05)
        assert f == 0.05

    def test_zero_amplitude_flat(self):
        for hour in range(24):
            assert diurnal_factor(hour, 14.0, 0.0, False, 1.0) == 1.0


class TestVectorised:
    def test_matches_scalar(self):
        hours = np.arange(24, dtype=float)
        peaks = np.full(24, 14.0)
        amps = np.full(24, 0.4)
        wkf = np.full(24, 0.8)
        vec = diurnal_factors_vec(hours, peaks, amps, True, wkf)
        for h in range(24):
            assert vec[h] == pytest.approx(
                diurnal_factor(float(h), 14.0, 0.4, True, 0.8))

    def test_mean_near_one_on_weekdays(self):
        hours = np.arange(24, dtype=float)
        vec = diurnal_factors_vec(hours, np.full(24, 14.0),
                                  np.full(24, 0.5), False, np.ones(24))
        assert np.mean(vec) == pytest.approx(1.0, abs=0.02)
