"""Tests for the flow population and hourly volume generation."""

import numpy as np
import pytest

from repro.bgp import IngressSimulator
from repro.topology import (
    MetroCatalog,
    TopologyParams,
    WANParams,
    generate_as_graph,
    generate_wan,
)
from repro.traffic import (
    PrefixUniverse,
    SERVICE_PROFILES,
    TrafficGenerator,
    TrafficParams,
    profile_for,
)


@pytest.fixture(scope="module")
def world():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=3, n_transit=8, n_access=15, n_cdn=3, n_stub=40), seed=4)
    wan = generate_wan(graph, WANParams(n_regions=6, n_dest_prefixes=24),
                       seed=4)
    universe = PrefixUniverse(graph, seed=4)
    simulator = IngressSimulator(graph, wan, seed=4)
    params = TrafficParams(n_flows=500, horizon_days=10)
    gen = TrafficGenerator(graph, wan, universe, simulator.as_distance,
                           params, seed=4)
    return graph, wan, universe, simulator, gen


class TestPopulation:
    def test_flow_count_near_target(self, world):
        *_rest, gen = world
        assert 400 <= len(gen) <= 600

    def test_flow_sources_are_real_prefixes(self, world):
        _g, _w, universe, _s, gen = world
        for flow in gen.flows[:100]:
            prefix = universe.prefix(flow.src_prefix_id)
            assert prefix.asn == flow.src_asn
            assert prefix.metro == flow.src_metro

    def test_flow_destinations_are_real(self, world):
        _g, wan, _u, _s, gen = world
        for flow in gen.flows[:100]:
            dest = wan.dest_prefix(flow.dest_prefix_id)
            assert dest.region == flow.dest_region
            assert dest.service == flow.dest_service

    def test_profiles_match_services(self, world):
        *_rest, gen = world
        for flow in gen.flows[:100]:
            assert flow.profile_name == profile_for(flow.dest_service).name

    def test_distance_targets_roughly_met(self, world):
        _g, _w, _u, sim, gen = world
        by_distance = {}
        for flow in gen.flows:
            d = min(sim.as_distance(flow.src_asn), 4)
            by_distance[d] = by_distance.get(d, 0) + 1
        total = sum(by_distance.values())
        # the majority of flows come from 1-hop sources (paper Figure 2)
        assert by_distance.get(1, 0) / total > 0.4
        assert by_distance.get(1, 0) / total < 0.8

    def test_churn_produces_late_starts(self, world):
        *_rest, gen = world
        late = [f for f in gen.flows if f.start_day > 0]
        assert 0 < len(late) < len(gen.flows) * 0.3

    def test_lifetimes_within_horizon(self, world):
        *_rest, gen = world
        for flow in gen.flows:
            assert 0 <= flow.start_day <= flow.end_day <= 10

    def test_utilization_scaling_applied(self, world):
        _g, wan, _u, _s, gen = world
        total_rate_mbps = sum(f.base_rate_mbps for f in gen.flows)
        capacity_mbps = sum(l.capacity_gbps for l in wan.links) * 1000.0
        target = gen.params.mean_utilization_target
        # capping trims some mass, so allow a band around the target
        assert 0.4 * target < total_rate_mbps / capacity_mbps <= target * 1.01

    def test_rate_cap_enforced(self, world):
        *_rest, gen = world
        cap_limit = gen.params.rate_cap_fraction * (
            gen.params.mean_utilization_target *
            sum(l.capacity_gbps for l in world[1].links) * 1000.0)
        assert max(f.base_rate_mbps for f in gen.flows) <= cap_limit * 1.001


class TestVolumes:
    def test_deterministic_per_hour(self, world):
        *_rest, gen = world
        v1 = gen.volumes_for_hour(5)
        v2 = gen.volumes_for_hour(5)
        assert np.array_equal(v1, v2)

    def test_inactive_flows_zero(self, world):
        *_rest, gen = world
        late = [f for f in gen.flows if f.start_day > 2]
        if not late:
            pytest.skip("no late flows at this seed")
        flow = late[0]
        vols = gen.volumes_for_hour(0)
        assert vols[flow.flow_id] == 0.0
        vols_later = gen.volumes_for_hour(flow.start_day * 24 + 1)
        assert vols_later[flow.flow_id] > 0.0

    def test_volumes_nonnegative(self, world):
        *_rest, gen = world
        for hour in (0, 13, 100):
            assert (gen.volumes_for_hour(hour) >= 0.0).all()

    def test_diurnal_variation_visible_per_flow(self, world):
        # the global total is smoothed by timezones; individual flows
        # must still swing with their local day
        *_rest, gen = world
        flow = max(gen.flows, key=lambda f: profile_for(f.dest_service).amplitude)
        series = [gen.volumes_for_hour(h)[flow.flow_id] for h in range(24)]
        assert max(series) > 1.5 * min(v for v in series if v > 0)

    def test_flows_active_on(self, world):
        *_rest, gen = world
        active = gen.flows_active_on(5)
        assert all(f.start_day <= 5 <= f.end_day for f in active)
        assert len(active) <= len(gen.flows)


class TestWorkloadCoverage:
    def test_all_default_services_have_profiles(self, world):
        _g, wan, *_rest = world
        for service in wan.services():
            assert service in SERVICE_PROFILES

    def test_unknown_service_defaults_to_enterprise(self):
        assert profile_for("quantum-teleport").name == "enterprise"
