"""Tests for workload profiles."""

from repro.topology import DEFAULT_SERVICES
from repro.traffic import (
    BATCH,
    CONSUMER,
    ENTERPRISE,
    FLAT,
    PROFILES,
    SERVICE_PROFILES,
    profile_for,
)


class TestProfiles:
    def test_every_default_service_mapped(self):
        for service in DEFAULT_SERVICES:
            assert service in SERVICE_PROFILES

    def test_profiles_are_the_canonical_four(self):
        assert set(SERVICE_PROFILES.values()) <= set(PROFILES)

    def test_enterprise_peaks_business_hours(self):
        assert 9 <= ENTERPRISE.peak_hour <= 18
        assert ENTERPRISE.weekend_factor < 1.0

    def test_consumer_peaks_evening(self):
        assert CONSUMER.peak_hour >= 18
        assert CONSUMER.weekend_factor >= 1.0

    def test_batch_is_nocturnal_and_heavy(self):
        assert BATCH.peak_hour < 6
        assert BATCH.rate_scale_mbps > ENTERPRISE.rate_scale_mbps

    def test_flat_is_flat(self):
        assert FLAT.amplitude < 0.2

    def test_unknown_service_falls_back(self):
        assert profile_for("does-not-exist") is ENTERPRISE

    def test_amplitudes_valid(self):
        for profile in PROFILES:
            assert 0.0 <= profile.amplitude < 1.0
            assert profile.rate_sigma > 0
            assert profile.rate_scale_mbps > 0
