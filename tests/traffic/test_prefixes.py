"""Tests for the source /24 prefix universe."""

import pytest

from repro.topology import MetroCatalog, TopologyParams, generate_as_graph
from repro.traffic import DEFAULT_PREFIX_COUNTS, PrefixUniverse


@pytest.fixture(scope="module")
def universe():
    graph = generate_as_graph(MetroCatalog(), TopologyParams(
        n_tier1=3, n_transit=8, n_access=15, n_cdn=3, n_stub=40), seed=9)
    return graph, PrefixUniverse(graph, seed=9)


class TestPrefixUniverse:
    def test_prefix_ids_dense(self, universe):
        _graph, uni = universe
        assert [p.prefix_id for p in uni] == list(range(len(uni)))

    def test_prefix_lookup(self, universe):
        _graph, uni = universe
        p = uni.prefix(5)
        assert p.prefix_id == 5

    def test_counts_within_role_bounds(self, universe):
        graph, uni = universe
        for asn in uni.asns():
            role = graph.node(asn).role
            lo, hi = DEFAULT_PREFIX_COUNTS[role]
            assert lo <= len(uni.of_as(asn)) <= hi

    def test_metros_within_footprint(self, universe):
        graph, uni = universe
        for p in uni:
            assert p.metro in graph.node(p.asn).footprint

    def test_one_location_per_prefix(self, universe):
        """The paper's invariant behind APL == AP: each /24 has exactly
        one source location."""
        _graph, uni = universe
        seen = {}
        for p in uni:
            assert seen.setdefault(p.prefix_id, p.metro) == p.metro

    def test_geographic_concentration(self, universe):
        """Zipf placement: an AS's prefixes concentrate in few metros."""
        graph, uni = universe
        concentrated = 0
        eligible = 0
        for asn in uni.asns():
            node = graph.node(asn)
            prefixes = uni.of_as(asn)
            if len(node.footprint) < 3 or len(prefixes) < 20:
                continue
            eligible += 1
            from collections import Counter
            counts = Counter(p.metro for p in prefixes)
            top = counts.most_common(1)[0][1]
            if top > len(prefixes) / len(node.footprint) * 1.5:
                concentrated += 1
        assert eligible > 0
        assert concentrated / eligible > 0.6

    def test_deterministic(self, universe):
        graph, uni = universe
        uni2 = PrefixUniverse(graph, seed=9)
        assert [(p.asn, p.metro) for p in uni] == [
            (p.asn, p.metro) for p in uni2]

    def test_cidr_rendering(self, universe):
        _graph, uni = universe
        p = uni.prefix(0)
        assert p.cidr.endswith(".0/24")
        parts = p.cidr.split("/")[0].split(".")
        assert len(parts) == 4

    def test_location_of(self, universe):
        _graph, uni = universe
        assert uni.location_of(3) == uni.prefix(3).metro
