"""Tests for Gao-Rexford relationships and valley-free rules."""

import pytest

from repro.topology import ASLink, LOCAL_PREF, Relationship, exportable, is_valley_free


class TestRelationship:
    def test_invert_roundtrip(self):
        for rel in Relationship:
            assert rel.invert().invert() is rel

    def test_invert_customer_provider(self):
        assert Relationship.CUSTOMER.invert() is Relationship.PROVIDER
        assert Relationship.PROVIDER.invert() is Relationship.CUSTOMER
        assert Relationship.PEER.invert() is Relationship.PEER

    def test_local_pref_ordering(self):
        assert (LOCAL_PREF[Relationship.CUSTOMER]
                > LOCAL_PREF[Relationship.PEER]
                > LOCAL_PREF[Relationship.PROVIDER])


class TestExportable:
    def test_customer_routes_export_everywhere(self):
        for to in Relationship:
            assert exportable(Relationship.CUSTOMER, to)

    def test_peer_routes_only_to_customers(self):
        assert exportable(Relationship.PEER, Relationship.CUSTOMER)
        assert not exportable(Relationship.PEER, Relationship.PEER)
        assert not exportable(Relationship.PEER, Relationship.PROVIDER)

    def test_provider_routes_only_to_customers(self):
        assert exportable(Relationship.PROVIDER, Relationship.CUSTOMER)
        assert not exportable(Relationship.PROVIDER, Relationship.PEER)
        assert not exportable(Relationship.PROVIDER, Relationship.PROVIDER)


class TestValleyFree:
    def test_empty_path(self):
        assert is_valley_free(())

    def test_all_up(self):
        path = (Relationship.PROVIDER, Relationship.PROVIDER)
        assert is_valley_free(path)

    def test_up_peer_down(self):
        path = (Relationship.PROVIDER, Relationship.PEER,
                Relationship.CUSTOMER)
        assert is_valley_free(path)

    def test_down_then_up_is_valley(self):
        path = (Relationship.CUSTOMER, Relationship.PROVIDER)
        assert not is_valley_free(path)

    def test_two_peer_steps_invalid(self):
        path = (Relationship.PEER, Relationship.PEER)
        assert not is_valley_free(path)

    def test_peer_then_up_invalid(self):
        path = (Relationship.PEER, Relationship.PROVIDER)
        assert not is_valley_free(path)

    def test_all_down(self):
        path = (Relationship.CUSTOMER,) * 4
        assert is_valley_free(path)


class TestASLink:
    def test_relationship_of_both_sides(self):
        link = ASLink(1, 2, Relationship.CUSTOMER)  # 2 is 1's customer
        assert link.relationship_of(1) is Relationship.CUSTOMER
        assert link.relationship_of(2) is Relationship.PROVIDER

    def test_other(self):
        link = ASLink(1, 2, Relationship.PEER)
        assert link.other(1) == 2
        assert link.other(2) == 1

    def test_non_endpoint_raises(self):
        link = ASLink(1, 2, Relationship.PEER)
        with pytest.raises(ValueError):
            link.relationship_of(3)
        with pytest.raises(ValueError):
            link.other(3)
