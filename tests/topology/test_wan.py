"""Tests for the cloud WAN model and its generator."""

import pytest

from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
    TopologyParams,
    WANParams,
    generate_as_graph,
    generate_wan,
)


@pytest.fixture(scope="module")
def world():
    metros = MetroCatalog()
    graph = generate_as_graph(metros, TopologyParams(
        n_tier1=4, n_transit=12, n_access=30, n_cdn=4, n_stub=60), seed=5)
    wan = generate_wan(graph, WANParams(), seed=5)
    return graph, wan


class TestCloudWAN:
    def _tiny(self):
        metros = MetroCatalog()
        links = [
            PeeringLink(0, 100, "sea", "sea-er1", 100.0),
            PeeringLink(1, 100, "lon", "lon-er1", 40.0),
            PeeringLink(2, 200, "sea", "sea-er1", 10.0, kind="ixp"),
        ]
        regions = [Region("sea-region", "sea")]
        dests = [DestPrefix(0, "100.64.0.0/24", "sea-region", "storage")]
        return CloudWAN(8075, links, regions, dests, metros)

    def test_lookups(self):
        wan = self._tiny()
        assert wan.link(0).metro == "sea"
        assert wan.has_link(2)
        assert not wan.has_link(99)
        assert wan.links_of_peer(100) == (wan.link(0), wan.link(1))
        assert wan.peer_asns == (100, 200)
        assert wan.region("sea-region").metro == "sea"
        assert wan.dest_prefix(0).service == "storage"

    def test_link_distance(self):
        wan = self._tiny()
        assert wan.link_distance_km(0, 2) == 0.0  # same metro
        assert wan.link_distance_km(0, 1) > 7000  # Seattle-London

    def test_duplicate_link_id_rejected(self):
        metros = MetroCatalog()
        links = [PeeringLink(0, 100, "sea", "r", 10.0)] * 2
        with pytest.raises(ValueError):
            CloudWAN(1, links, [], [], metros)

    def test_empty_links_rejected(self):
        with pytest.raises(ValueError):
            CloudWAN(1, [], [], [], MetroCatalog())

    def test_link_name_contains_identity(self):
        wan = self._tiny()
        name = wan.link(0).name
        assert "sea-er1" in name and "AS100" in name

    def test_services_sorted_unique(self):
        wan = self._tiny()
        assert wan.services() == ("storage",)

    def test_summary_counts(self):
        wan = self._tiny()
        s = wan.summary()
        assert s == {"links": 3, "peers": 2, "metros": 2,
                     "regions": 1, "dest_prefixes": 1}


class TestGeneratedWAN:
    def test_deterministic(self, world):
        graph, wan = world
        wan2 = generate_wan(graph, WANParams(), seed=5)
        assert [l.name for l in wan.links] == [l.name for l in wan2.links]

    def test_link_ids_dense_from_zero(self, world):
        _graph, wan = world
        assert sorted(l.link_id for l in wan.links) == list(
            range(len(wan.links)))

    def test_all_tier1_and_cdn_peer(self, world):
        graph, wan = world
        peers = set(wan.peer_asns)
        for node in graph.nodes():
            if node.role.value in ("tier1", "cdn"):
                assert node.asn in peers

    def test_peering_metros_within_peer_footprint(self, world):
        graph, wan = world
        for link in wan.links:
            assert link.metro in graph.node(link.peer_asn).footprint

    def test_big_peers_have_multiple_links(self, world):
        graph, wan = world
        tier1 = next(n for n in graph.nodes() if n.role.value == "tier1")
        assert len(wan.links_of_peer(tier1.asn)) >= 4

    def test_parallel_links_same_metro_exist(self, world):
        # the §2 incident needs parallel sessions in one metro (I1, I2)
        _graph, wan = world
        seen = set()
        parallel = False
        for link in wan.links:
            key = (link.peer_asn, link.metro)
            if key in seen:
                parallel = True
                break
            seen.add(key)
        assert parallel

    def test_dest_prefixes_cover_all_regions(self, world):
        _graph, wan = world
        regions_used = {p.region for p in wan.dest_prefixes}
        assert regions_used == {r.name for r in wan.regions}

    def test_capacities_positive(self, world):
        _graph, wan = world
        assert all(l.capacity_gbps > 0 for l in wan.links)

    def test_region_metros_are_wan_metros(self, world):
        _graph, wan = world
        metro_names = set(wan.metros.names)
        for region in wan.regions:
            assert region.metro in metro_names
