"""Tests for the synthetic AS graph and its generator."""

import pytest

from repro.topology import (
    ASGraph,
    ASNode,
    ASRole,
    MetroCatalog,
    Pocket,
    Relationship,
    TopologyParams,
    generate_as_graph,
)


@pytest.fixture(scope="module")
def graph():
    return generate_as_graph(MetroCatalog(), TopologyParams(
        n_tier1=4, n_transit=12, n_access=30, n_cdn=4, n_stub=80), seed=3)


class TestASGraphConstruction:
    def _tiny(self):
        metros = MetroCatalog()
        g = ASGraph(metros)
        g.add_as(ASNode(1, ASRole.TIER1, ("sea", "lon")))
        g.add_as(ASNode(2, ASRole.STUB, ("sea",)))
        return g

    def test_add_and_query(self):
        g = self._tiny()
        g.add_link(2, 1, Relationship.PROVIDER)  # 1 is 2's provider
        assert g.relationship(2, 1) is Relationship.PROVIDER
        assert g.relationship(1, 2) is Relationship.CUSTOMER
        assert g.providers(2) == (1,)
        assert g.customers(1) == (2,)
        assert g.peers(1) == ()

    def test_duplicate_as_rejected(self):
        g = self._tiny()
        with pytest.raises(ValueError):
            g.add_as(ASNode(1, ASRole.STUB, ("sea",)))

    def test_unknown_metro_rejected(self):
        g = self._tiny()
        with pytest.raises(ValueError):
            g.add_as(ASNode(3, ASRole.STUB, ("atlantis",)))

    def test_self_loop_rejected(self):
        g = self._tiny()
        with pytest.raises(ValueError):
            g.add_link(1, 1, Relationship.PEER)

    def test_duplicate_link_rejected(self):
        g = self._tiny()
        g.add_link(1, 2, Relationship.CUSTOMER)
        with pytest.raises(ValueError):
            g.add_link(1, 2, Relationship.PEER)

    def test_link_to_missing_as_rejected(self):
        g = self._tiny()
        with pytest.raises(KeyError):
            g.add_link(1, 99, Relationship.PEER)

    def test_pocket_for(self):
        node = ASNode(5, ASRole.CDN, ("sea", "lon", "tyo"),
                      pockets=(Pocket(frozenset({"tyo"}), (1,)),))
        assert node.pocket_for("tyo") is not None
        assert node.pocket_for("sea") is None


class TestGeneratedGraph:
    def test_deterministic(self):
        metros = MetroCatalog()
        params = TopologyParams(n_tier1=3, n_transit=6, n_access=10,
                                n_cdn=2, n_stub=20)
        g1 = generate_as_graph(metros, params, seed=42)
        g2 = generate_as_graph(metros, params, seed=42)
        assert g1.asns == g2.asns
        for asn in g1.asns:
            assert g1.neighbors(asn) == g2.neighbors(asn)

    def test_counts_by_role(self, graph):
        by_role = {}
        for node in graph.nodes():
            by_role[node.role] = by_role.get(node.role, 0) + 1
        assert by_role[ASRole.TIER1] == 4
        assert by_role[ASRole.TRANSIT] == 12
        assert by_role[ASRole.ACCESS] == 30
        assert by_role[ASRole.CDN] == 4
        assert by_role[ASRole.STUB] == 80

    def test_tier1_full_mesh(self, graph):
        tier1s = [n.asn for n in graph.nodes() if n.role is ASRole.TIER1]
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1:]:
                assert graph.relationship(a, b) is Relationship.PEER

    def test_tier1_has_no_providers(self, graph):
        for node in graph.nodes():
            if node.role is ASRole.TIER1:
                assert graph.providers(node.asn) == ()

    def test_every_non_tier1_has_a_provider(self, graph):
        for node in graph.nodes():
            if node.role is not ASRole.TIER1:
                assert graph.providers(node.asn), f"AS{node.asn} is orphaned"

    def test_stubs_have_no_customers(self, graph):
        for node in graph.nodes():
            if node.role is ASRole.STUB:
                assert graph.customers(node.asn) == ()

    def test_provider_hierarchy_is_acyclic(self, graph):
        # provider edges strictly climb the tier ordering, so the
        # provider hierarchy is a DAG and route walks terminate
        order = {"stub": 0, "access": 1, "cdn": 1, "transit": 2, "tier1": 3}
        for node in graph.nodes():
            for p in graph.providers(node.asn):
                assert order[graph.node(p).role.value] > order[node.role.value], (
                    f"provider edge AS{node.asn}->AS{p} does not climb tiers")

    def test_pockets_within_footprint(self, graph):
        for node in graph.nodes():
            footprint = set(node.footprint)
            for pocket in node.pockets:
                assert pocket.metros <= footprint
                # pocket providers are adjacent so routes can flow
                for provider in pocket.providers:
                    assert provider in graph.neighbors(node.asn)

    def test_cdns_have_pockets(self, graph):
        cdns = [n for n in graph.nodes() if n.role is ASRole.CDN]
        assert any(n.pockets for n in cdns)

    def test_validate_passes(self, graph):
        graph.validate()

    def test_to_networkx_roundtrip(self, graph):
        nxg = graph.to_networkx()
        assert nxg.number_of_nodes() == len(graph)
        # relationship annotations present on every edge
        for _a, _b, data in nxg.edges(data=True):
            assert data["relationship"] in {"customer", "peer", "provider"}

    def test_validate_detects_empty_footprint(self):
        metros = MetroCatalog()
        g = ASGraph(metros)
        g.add_as(ASNode(1, ASRole.STUB, ("sea",)))
        g._nodes[1] = ASNode(1, ASRole.STUB, ())  # simulate corruption
        with pytest.raises(ValueError):
            g.validate()
