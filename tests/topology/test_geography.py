"""Tests for metros and great-circle distances."""

import math

import pytest

from repro.topology import Metro, MetroCatalog, WORLD_METROS, haversine_km


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(47.61, -122.33, 47.61, -122.33) == 0.0

    def test_symmetric(self):
        d1 = haversine_km(47.61, -122.33, 51.51, -0.13)
        d2 = haversine_km(51.51, -0.13, 47.61, -122.33)
        assert d1 == pytest.approx(d2)

    def test_known_distance_london_paris(self):
        # London <-> Paris is ~344 km
        d = haversine_km(51.51, -0.13, 48.86, 2.35)
        assert 320 < d < 370

    def test_antipodal_upper_bound(self):
        # no two points are further apart than half the circumference
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * 6371.0, rel=1e-6)


class TestMetro:
    def test_distance_km_matches_haversine(self):
        sea = Metro("sea", "Seattle", "us", "na", 47.61, -122.33)
        lon = Metro("lon", "London", "gb", "eu", 51.51, -0.13)
        assert sea.distance_km(lon) == pytest.approx(
            haversine_km(47.61, -122.33, 51.51, -0.13))

    def test_frozen(self):
        metro = WORLD_METROS[0]
        with pytest.raises(AttributeError):
            metro.lat = 0.0


class TestMetroCatalog:
    def test_default_catalog_size(self):
        catalog = MetroCatalog()
        assert len(catalog) == len(WORLD_METROS) >= 40

    def test_get_and_contains(self):
        catalog = MetroCatalog()
        assert "sea" in catalog
        assert catalog.get("sea").city == "Seattle"
        assert "nowhere" not in catalog

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            MetroCatalog().get("nowhere")

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            MetroCatalog(())

    def test_duplicate_names_rejected(self):
        metro = WORLD_METROS[0]
        with pytest.raises(ValueError):
            MetroCatalog((metro, metro))

    def test_distance_symmetric_and_cached(self):
        catalog = MetroCatalog()
        assert catalog.distance_km("sea", "lon") == pytest.approx(
            catalog.distance_km("lon", "sea"))
        assert catalog.distance_km("sea", "sea") == 0.0

    def test_nearest_prefers_closest(self):
        catalog = MetroCatalog()
        # from Seattle: Vancouver is nearer than London
        assert catalog.nearest("sea", ["lon", "yvr"]) == "yvr"

    def test_nearest_requires_candidates(self):
        with pytest.raises(ValueError):
            MetroCatalog().nearest("sea", [])

    def test_nearest_tie_breaks_by_name(self):
        catalog = MetroCatalog()
        assert catalog.nearest("sea", ["sea"]) == "sea"

    def test_rank_by_distance_sorted(self):
        catalog = MetroCatalog()
        ranked = catalog.rank_by_distance("sea", ["lon", "yvr", "nyc"])
        distances = [catalog.distance_km("sea", m) for m in ranked]
        assert distances == sorted(distances)
        assert ranked[0] == "yvr"

    def test_in_continent(self):
        catalog = MetroCatalog()
        europe = catalog.in_continent("eu")
        assert all(m.continent == "eu" for m in europe)
        assert {"lon", "ams", "fra"} <= {m.name for m in europe}

    def test_in_country(self):
        catalog = MetroCatalog()
        japan = catalog.in_country("jp")
        assert {m.name for m in japan} == {"tyo", "osa"}

    def test_names_unique(self):
        catalog = MetroCatalog()
        assert len(set(catalog.names)) == len(catalog.names)
