"""Tests for the Naive Bayes models (Appendix A)."""

import pytest

from repro.core import FEATURES_A, FEATURES_AL, NaiveBayesModel
from repro.pipeline import FlowContext


def ctx(asn=1, prefix=10, loc=0, region=0, service=0):
    return FlowContext(asn, prefix, loc, region, service)


class TestBasics:
    def test_majority_link_wins(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(), 5, 900.0)
        model.observe(ctx(), 7, 100.0)
        preds = model.predict(ctx(), 2)
        assert preds[0].link_id == 5
        assert preds[0].score > preds[1].score

    def test_scores_normalised(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(), 5, 900.0)
        model.observe(ctx(), 7, 100.0)
        preds = model.predict(ctx(), 2)
        assert sum(p.score for p in preds) == pytest.approx(1.0)

    def test_empty_model_no_prediction(self):
        model = NaiveBayesModel(FEATURES_A)
        assert model.predict(ctx(), 3) == []
        assert not model.has_prediction(ctx())

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            NaiveBayesModel(FEATURES_A, alpha=0.0)

    def test_default_name(self):
        assert NaiveBayesModel(FEATURES_AL).name == "NB_AL"


class TestTransferLearning:
    def test_generalises_across_tuples(self):
        """NB predicts for unseen tuples from per-feature conditionals —
        the paper's reason for considering it despite lower accuracy."""
        model = NaiveBayesModel(FEATURES_AL)
        # AS 1 traffic from loc 0 to region 0 lands on link 5
        model.observe(ctx(asn=1, loc=0, region=0), 5, 500.0)
        # AS 2 traffic to region 1 lands on link 7
        model.observe(ctx(asn=2, loc=1, region=1), 7, 500.0)
        # unseen combination: AS 1 from loc 1 — still scores both links,
        # favouring link 5 via the AS conditional
        unseen = ctx(asn=1, loc=1, region=0)
        preds = model.predict(unseen, 2)
        assert preds
        assert preds[0].link_id == 5

    def test_fully_unknown_context_no_prediction(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(asn=1), 5, 100.0)
        totally_new = ctx(asn=99, region=42, service=17)
        assert model.predict(totally_new, 3) == []


class TestAvailabilityPrior:
    def test_unavailable_masked(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(), 5, 900.0)
        model.observe(ctx(), 7, 100.0)
        preds = model.predict(ctx(), 2, unavailable=frozenset({5}))
        assert [p.link_id for p in preds] == [7]

    def test_all_unavailable(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(), 5, 100.0)
        assert model.predict(ctx(), 2, unavailable=frozenset({5})) == []


class TestWeighting:
    def test_byte_weighting_dominates_counts(self):
        model = NaiveBayesModel(FEATURES_A)
        # many small observations on 5, one huge on 7
        for _ in range(10):
            model.observe(ctx(), 5, 1.0)
        model.observe(ctx(), 7, 1e6)
        assert model.predict(ctx(), 1)[0].link_id == 7

    def test_size_reports_entries(self):
        model = NaiveBayesModel(FEATURES_A)
        model.observe(ctx(asn=1), 5, 1.0)
        model.observe(ctx(asn=2), 7, 1.0)
        assert model.size() > 0
