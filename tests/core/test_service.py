"""Tests for the online prediction service (§4)."""

import pytest

from repro.core.service import ServiceConfig, TipsyService
from repro.pipeline import AggRecord, FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


def rec(hour, link, prefix, bytes_=100.0):
    return AggRecord(hour, link, 1, prefix, 0, 0, 0, bytes_)


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [PeeringLink(i, 100, m, f"{m}-er1", 100.0)
             for i, m in enumerate(("iad", "nyc", "atl"))]
    return CloudWAN(8075, links, [Region("r", "iad")],
                    [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)


@pytest.fixture()
def service(wan):
    return TipsyService(wan, ServiceConfig(training_window_days=3))


class TestIngestionAndRetraining:
    def test_not_ready_before_first_full_day(self, service):
        service.ingest_hour(0, [rec(0, 0, 1)])
        assert not service.ready

    def test_retrains_on_day_boundary(self, service):
        for hour in range(24):
            service.ingest_hour(hour, [rec(hour, 0, 1)])
        before = service.retrain_count
        service.ingest_hour(24, [rec(24, 0, 1)])
        assert service.retrain_count == before + 1
        assert service.ready
        assert service.trained_days == (0,)

    def test_rolling_window_evicts(self, service):
        for day in range(6):
            service.ingest_hour(day * 24, [rec(day * 24, 0, 1)])
        # window is 3 days: old days gone from training
        assert min(service.trained_days) >= 2

    def test_out_of_order_rejected(self, service):
        service.ingest_hour(30, [])
        with pytest.raises(ValueError):
            service.ingest_hour(2, [])

    def test_current_day_excluded_from_training(self, service):
        service.ingest_hour(0, [rec(0, 0, 1)])
        service.ingest_hour(24, [rec(24, 1, 1)])  # today: link 1
        # trained only on day 0: predicts link 0, not link 1
        preds = service.predict(ctx(1))
        assert [p.link_id for p in preds] == [0]


class TestQueries:
    def _train(self, service):
        service.ingest_hour(0, [rec(0, 0, 1, 100.0), rec(0, 1, 1, 30.0),
                                rec(0, 0, 2, 50.0)])
        service.ingest_hour(24, [])

    def test_predict(self, service):
        self._train(service)
        preds = service.predict(ctx(1))
        assert preds[0].link_id == 0

    def test_predict_with_prior_uses_withdrawal_model(self, service):
        self._train(service)
        preds = service.predict(ctx(1), unavailable=frozenset({0}))
        assert preds
        assert preds[0].link_id != 0

    def test_what_if_spill(self, service):
        self._train(service)
        spill = service.what_if([(ctx(1), 1000.0), (ctx(2), 500.0)],
                                withdrawn=frozenset({0}))
        assert -1 not in spill or spill[-1] < 1500.0
        assert sum(spill.values()) == pytest.approx(1500.0)
        assert 0 not in spill

    def test_what_if_unplaceable(self, wan):
        service = TipsyService(wan)
        service.ingest_hour(0, [rec(0, 0, 9)])
        service.ingest_hour(24, [])
        # withdraw every link the flow (and its peer) could use
        spill = service.what_if([(ctx(9), 100.0)],
                                withdrawn=frozenset(wan.link_ids))
        assert spill == {-1: 100.0}

    def test_query_before_training_raises(self, service):
        with pytest.raises(RuntimeError):
            service.predict(ctx(1))


class TestWindowAndOrdering:
    def test_eviction_at_horizon_boundary(self, service):
        """A day exactly window_days old stays; one older is evicted."""
        for day in range(5):
            service.ingest_hour(day * 24, [rec(day * 24, 0, 1)])
        # today = 4, window = 3: horizon is day 1; day 0 is gone
        assert service.trained_days == (1, 2, 3)

    def test_hour_order_enforced_within_day(self, service):
        service.ingest_hour(5, [])
        with pytest.raises(ValueError):
            service.ingest_hour(4, [])

    def test_same_hour_may_repeat(self, service):
        service.ingest_hour(0, [rec(0, 0, 1, 60.0)])
        service.ingest_hour(0, [rec(0, 0, 1, 40.0)])
        service.ingest_hour(24, [])
        assert service.model("Hist_AP").bytes_for(ctx(1)) == {0: 100.0}

    def test_day_gap_drops_stale_days(self, service):
        service.ingest_hour(0, [rec(0, 0, 1)])
        service.ingest_hour(24, [rec(24, 0, 1)])
        # silence for weeks, then traffic resumes on day 30
        service.ingest_hour(30 * 24, [rec(30 * 24, 1, 1)])
        assert service.trained_days == ()
        assert not service.ready

    def test_retrain_count_tracks_day_rollovers(self, service):
        assert service.retrain_count == 0
        for hour in range(0, 72):
            service.ingest_hour(hour, [])
        assert service.retrain_count == 3      # days 0, 1, 2 began

    def test_trained_days_sorted_and_exclude_current(self, service):
        for day in range(4):
            service.ingest_hour(day * 24, [rec(day * 24, 0, 1)])
        assert service.trained_days == tuple(sorted(service.trained_days))
        assert 3 not in service.trained_days   # current day never trains


class TestStrictRebuild:
    def _feed(self, service, days=5):
        for day in range(days):
            for link in (0, 1):
                service.ingest_hour(
                    day * 24, [rec(day * 24, link, 1, 10.0 + link)])

    def test_strict_rebuild_preserves_answers(self, service):
        self._feed(service)
        before = service.predict(ctx(1))
        count = service.retrain_count
        service.retrain(strict_rebuild=True)
        assert service.retrain_count == count + 1
        assert service.predict(ctx(1)) == before

    def test_strict_rebuild_matches_incremental_counts(self, service):
        self._feed(service)
        incremental = service.model("Hist_AP").bytes_for(ctx(1))
        service.retrain(strict_rebuild=True)
        assert service.model("Hist_AP").bytes_for(ctx(1)) == incremental


class TestBatchedQueries:
    def _train(self, service):
        service.ingest_hour(0, [rec(0, 0, 1, 100.0), rec(0, 1, 1, 30.0),
                                rec(0, 0, 2, 50.0), rec(0, 2, 3, 10.0)])
        service.ingest_hour(24, [])

    def test_predict_batch_matches_predict(self, service):
        self._train(service)
        contexts = [ctx(1), ctx(2), ctx(3), ctx(1), ctx(99)]
        batch = service.predict_batch(contexts)
        assert batch == [service.predict(c) for c in contexts]

    def test_predict_batch_with_prior(self, service):
        self._train(service)
        batch = service.predict_batch([ctx(1), ctx(1)],
                                      unavailable=frozenset({0}))
        assert batch[0] == batch[1]
        assert all(p.link_id != 0 for p in batch[0])

    def test_what_if_matches_per_flow_reference(self, service):
        self._train(service)
        flows = [(ctx(1), 1000.0), (ctx(2), 500.0), (ctx(3), 250.0),
                 (ctx(1), 125.0)]
        withdrawn = frozenset({0})
        batched = service.what_if(flows, withdrawn)
        reference = service.what_if_per_flow(flows, withdrawn)
        assert set(batched) == set(reference)
        for link, bytes_ in reference.items():
            assert batched[link] == pytest.approx(bytes_)

    def test_what_if_empty_flows(self, service):
        self._train(service)
        assert service.what_if([], frozenset({0})) == {}

    def test_what_if_unplaceable_bytes_under_minus_one(self, wan):
        service = TipsyService(wan)
        service.ingest_hour(0, [rec(0, 0, 9, 70.0), rec(0, 1, 8, 25.0)])
        service.ingest_hour(24, [])
        spill = service.what_if(
            [(ctx(9), 100.0), (ctx(9), 11.0), (ctx(8), 5.0)],
            withdrawn=frozenset(wan.link_ids))
        assert spill == {-1: 116.0}
        assert service.what_if_per_flow(
            [(ctx(9), 100.0), (ctx(9), 11.0), (ctx(8), 5.0)],
            withdrawn=frozenset(wan.link_ids)) == {-1: 116.0}


class TestPredictionMemo:
    def _train(self, service):
        service.ingest_hour(0, [rec(0, 0, 1, 100.0), rec(0, 1, 1, 30.0)])
        service.ingest_hour(24, [])

    def test_repeat_queries_hit_memo(self, service):
        self._train(service)
        service.predict(ctx(1))
        stats = service.cache_stats()
        service.predict(ctx(1))
        after = service.cache_stats()
        assert after["memo_hits"] == stats["memo_hits"] + 1
        assert after["memo_misses"] == stats["memo_misses"]

    def test_retrain_invalidates_memo(self, service):
        self._train(service)
        service.predict(ctx(1))
        assert service.cache_stats()["memo_entries"] == 1
        service.ingest_hour(48, [])    # day rollover -> retrain
        assert service.cache_stats()["memo_entries"] == 0

    def test_memo_respects_bound(self, wan):
        service = TipsyService(
            wan, ServiceConfig(training_window_days=3, memo_size=2))
        records = [rec(0, 0, prefix, 10.0) for prefix in range(5)]
        service.ingest_hour(0, records)
        service.ingest_hour(24, [])
        for prefix in range(5):
            service.predict(ctx(prefix))
        stats = service.cache_stats()
        assert stats["memo_entries"] == 2
        assert stats["memo_evictions"] == 3

    def test_distinct_priors_memoized_separately(self, service):
        self._train(service)
        a = service.predict(ctx(1), unavailable=frozenset({0}))
        b = service.predict(ctx(1), unavailable=frozenset({1}))
        assert a != b

    def test_mutable_set_prior_accepted(self, service):
        # callers (the CMS) naturally build plain sets; the memo key must
        # not choke on them
        self._train(service)
        assert (service.predict(ctx(1), unavailable={0})
                == service.predict(ctx(1), unavailable=frozenset({0})))
        flows = [(ctx(1), 50.0)]
        assert (service.what_if(flows, withdrawn={0})
                == service.what_if_per_flow(flows, withdrawn={0}))
        batch = service.predict_batch([ctx(1)], unavailable={0})
        assert batch[0] == service.predict(ctx(1), unavailable=frozenset({0}))
