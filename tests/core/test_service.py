"""Tests for the online prediction service (§4)."""

import pytest

from repro.core.service import ServiceConfig, TipsyService
from repro.pipeline import AggRecord, FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


def rec(hour, link, prefix, bytes_=100.0):
    return AggRecord(hour, link, 1, prefix, 0, 0, 0, bytes_)


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [PeeringLink(i, 100, m, f"{m}-er1", 100.0)
             for i, m in enumerate(("iad", "nyc", "atl"))]
    return CloudWAN(8075, links, [Region("r", "iad")],
                    [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)


@pytest.fixture()
def service(wan):
    return TipsyService(wan, ServiceConfig(training_window_days=3))


class TestIngestionAndRetraining:
    def test_not_ready_before_first_full_day(self, service):
        service.ingest_hour(0, [rec(0, 0, 1)])
        assert not service.ready

    def test_retrains_on_day_boundary(self, service):
        for hour in range(24):
            service.ingest_hour(hour, [rec(hour, 0, 1)])
        before = service.retrain_count
        service.ingest_hour(24, [rec(24, 0, 1)])
        assert service.retrain_count == before + 1
        assert service.ready
        assert service.trained_days == (0,)

    def test_rolling_window_evicts(self, service):
        for day in range(6):
            service.ingest_hour(day * 24, [rec(day * 24, 0, 1)])
        # window is 3 days: old days gone from training
        assert min(service.trained_days) >= 2

    def test_out_of_order_rejected(self, service):
        service.ingest_hour(30, [])
        with pytest.raises(ValueError):
            service.ingest_hour(2, [])

    def test_current_day_excluded_from_training(self, service):
        service.ingest_hour(0, [rec(0, 0, 1)])
        service.ingest_hour(24, [rec(24, 1, 1)])  # today: link 1
        # trained only on day 0: predicts link 0, not link 1
        preds = service.predict(ctx(1))
        assert [p.link_id for p in preds] == [0]


class TestQueries:
    def _train(self, service):
        service.ingest_hour(0, [rec(0, 0, 1, 100.0), rec(0, 1, 1, 30.0),
                                rec(0, 0, 2, 50.0)])
        service.ingest_hour(24, [])

    def test_predict(self, service):
        self._train(service)
        preds = service.predict(ctx(1))
        assert preds[0].link_id == 0

    def test_predict_with_prior_uses_withdrawal_model(self, service):
        self._train(service)
        preds = service.predict(ctx(1), unavailable=frozenset({0}))
        assert preds
        assert preds[0].link_id != 0

    def test_what_if_spill(self, service):
        self._train(service)
        spill = service.what_if([(ctx(1), 1000.0), (ctx(2), 500.0)],
                                withdrawn=frozenset({0}))
        assert -1 not in spill or spill[-1] < 1500.0
        assert sum(spill.values()) == pytest.approx(1500.0)
        assert 0 not in spill

    def test_what_if_unplaceable(self, wan):
        service = TipsyService(wan)
        service.ingest_hour(0, [rec(0, 0, 9)])
        service.ingest_hour(24, [])
        # withdraw every link the flow (and its peer) could use
        spill = service.what_if([(ctx(9), 100.0)],
                                withdrawn=frozenset(wan.link_ids))
        assert spill == {-1: 100.0}

    def test_query_before_training_raises(self, service):
        with pytest.raises(RuntimeError):
            service.predict(ctx(1))
