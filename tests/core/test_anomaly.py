"""Tests for suspicious-ingress detection (§8)."""

import pytest

from repro.core import (
    AnomalyDetectorConfig,
    FEATURES_AP,
    HistoricalModel,
    IngressAnomalyDetector,
)
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


def ctx(prefix=1):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def detector():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 100.0),
        PeeringLink(1, 100, "nyc", "nyc-er1", 100.0),
        PeeringLink(2, 100, "tyo", "tyo-er1", 100.0),
        PeeringLink(3, 200, "sin", "sin-er1", 100.0),
    ]
    wan = CloudWAN(8075, links, [Region("r", "iad")],
                   [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)
    model = HistoricalModel(FEATURES_AP)
    model.observe(ctx(), 0, 1000.0)  # flow lives on the iad link
    return IngressAnomalyDetector(model, wan)


class TestJudgement:
    def test_predicted_link_is_clean(self, detector):
        verdict = detector.judge(ctx(), 0)
        assert not verdict.suspicious
        assert "predicted set" in verdict.reason

    def test_nearby_unpredicted_link_is_clean(self, detector):
        # nyc is ~330 km from iad: inside the distance margin
        verdict = detector.judge(ctx(), 1)
        assert not verdict.suspicious
        assert verdict.nearest_predicted_km < 500

    def test_far_link_is_suspicious(self, detector):
        # tokyo is ~10,000 km from every predicted ingress
        verdict = detector.judge(ctx(), 2)
        assert verdict.suspicious
        assert verdict.nearest_predicted_km > 4000

    def test_unknown_flow_not_flagged(self, detector):
        verdict = detector.judge(ctx(prefix=999), 2)
        assert not verdict.suspicious
        assert "unknown flow" in verdict.reason

    def test_distance_threshold_configurable(self, detector):
        detector.config = AnomalyDetectorConfig(distance_km=20000.0)
        assert not detector.judge(ctx(), 2).suspicious


class TestScan:
    def test_scan_returns_only_suspicious(self, detector):
        observations = [(ctx(), 0), (ctx(), 1), (ctx(), 2), (ctx(), 3)]
        flagged = detector.scan(observations)
        assert {v.link_id for v in flagged} == {2, 3}
        assert all(v.suspicious for v in flagged)
