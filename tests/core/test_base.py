"""Tests for the model protocol defaults."""

from typing import FrozenSet, List

from repro.core import IngressModel, Prediction
from repro.core.base import NO_LINKS
from repro.pipeline import FlowContext


class _Fixed(IngressModel):
    """Minimal model returning a fixed ranking (for protocol tests)."""

    name = "fixed"

    def __init__(self, links):
        self._links = links

    def predict(self, context: FlowContext, k: int,
                unavailable: FrozenSet[int] = NO_LINKS) -> List[Prediction]:
        out = [Prediction(l, 1.0 / (i + 1))
               for i, l in enumerate(self._links)
               if l not in unavailable]
        return out[:k]


CTX = FlowContext(1, 2, 3, 4, 5)


class TestDefaults:
    def test_has_prediction_default_uses_predict(self):
        assert _Fixed([1, 2]).has_prediction(CTX)
        assert not _Fixed([]).has_prediction(CTX)

    def test_has_prediction_respects_unavailable(self):
        model = _Fixed([1])
        assert not model.has_prediction(CTX, frozenset({1}))

    def test_prediction_namedtuple_fields(self):
        p = Prediction(7, 0.5)
        assert p.link_id == 7
        assert p.score == 0.5
        link, score = p
        assert (link, score) == (7, 0.5)

    def test_abstract_instantiation_fails(self):
        try:
            IngressModel()
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("IngressModel should be abstract")
