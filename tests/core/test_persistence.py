"""Tests for model persistence (JSON round-trips)."""

import json

import pytest

from repro.core import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    GeoAugmentedModel,
    HistoricalModel,
    NaiveBayesModel,
    OracleModel,
    SequentialEnsemble,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


def ctx(prefix, asn=1, loc=0):
    return FlowContext(asn, prefix, loc, 0, 0)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [PeeringLink(i, 100, m, f"{m}-er1", 100.0)
             for i, m in enumerate(("iad", "nyc", "atl"))]
    return CloudWAN(8075, links, [Region("r", "iad")],
                    [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)


def trained_hist(feature_set=FEATURES_AP):
    model = HistoricalModel(feature_set)
    model.observe(ctx(1), 0, 100.0)
    model.observe(ctx(1), 1, 30.0)
    model.observe(ctx(2), 2, 50.0)
    model.finalize()
    return model


def assert_same_predictions(a, b, contexts=(ctx(1), ctx(2), ctx(99))):
    for context in contexts:
        for unavailable in (frozenset(), frozenset({0})):
            assert (a.predict(context, 3, unavailable)
                    == b.predict(context, 3, unavailable))


class TestHistoricalRoundtrip:
    def test_roundtrip(self):
        model = trained_hist()
        clone = model_from_dict(model_to_dict(model))
        assert clone.name == model.name
        assert_same_predictions(model, clone)

    def test_json_serialisable(self):
        text = json.dumps(model_to_dict(trained_hist()))
        clone = model_from_dict(json.loads(text))
        assert_same_predictions(trained_hist(), clone)

    def test_keep_top_preserved(self):
        model = HistoricalModel(FEATURES_AP, keep_top=1)
        model.observe(ctx(1), 0, 100.0)
        model.observe(ctx(1), 1, 50.0)
        model.finalize()
        clone = model_from_dict(model_to_dict(model))
        assert len(clone.predict(ctx(1), 5)) == 1


class TestOracleRoundtrip:
    def test_roundtrip_keeps_type(self):
        oracle = OracleModel(FEATURES_A)
        oracle.observe(ctx(1), 0, 10.0)
        oracle.finalize()
        clone = model_from_dict(model_to_dict(oracle))
        assert isinstance(clone, OracleModel)
        assert clone.name == "Oracle_A"


class TestNaiveBayesRoundtrip:
    def test_roundtrip(self):
        model = NaiveBayesModel(FEATURES_AL)
        model.observe(ctx(1, asn=1, loc=0), 0, 100.0)
        model.observe(ctx(2, asn=2, loc=1), 1, 60.0)
        model.finalize()
        clone = model_from_dict(json.loads(json.dumps(model_to_dict(model))))
        assert_same_predictions(model, clone,
                                contexts=(ctx(1), ctx(2), ctx(3, asn=1)))


class TestCompositeRoundtrip:
    def test_ensemble_roundtrip(self):
        ap = trained_hist(FEATURES_AP)
        a = trained_hist(FEATURES_A)
        ensemble = SequentialEnsemble([ap, a], name="Hist_AP/A")
        clone = model_from_dict(model_to_dict(ensemble))
        assert clone.name == "Hist_AP/A"
        assert_same_predictions(ensemble, clone)

    def test_geo_augmented_requires_wan(self, wan):
        model = GeoAugmentedModel(trained_hist(FEATURES_AL), wan)
        data = model_to_dict(model)
        with pytest.raises(ValueError):
            model_from_dict(data)
        clone = model_from_dict(data, wan=wan)
        assert_same_predictions(model, clone)


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        model = trained_hist()
        path = tmp_path / "model.json"
        save_model(model, path)
        clone = load_model(path)
        assert_same_predictions(model, clone)

    def test_version_check(self):
        data = model_to_dict(trained_hist())
        data["format"] = 99
        with pytest.raises(ValueError):
            model_from_dict(data)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format": 1, "type": "martian"})

    def test_unknown_feature_set_rejected(self):
        data = model_to_dict(trained_hist())
        data["features"] = "XYZ"
        with pytest.raises(ValueError):
            model_from_dict(data)
