"""Tests for the byte-weighted top-k accuracy metric (§5.1.2)."""

import pytest

from repro.core import (
    FEATURES_AP,
    HistoricalModel,
    OracleModel,
    Prediction,
    accuracy_table,
    evaluate_accuracy,
    matched_bytes,
    merge_actuals,
    total_bytes,
    volume_matched_bytes,
)
from repro.pipeline import FlowContext


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


class TestMatchedBytes:
    def test_link_matching(self):
        actual = {5: 100.0, 7: 50.0, 9: 10.0}
        preds = [Prediction(5, 0.6), Prediction(9, 0.1)]
        assert matched_bytes(actual, preds) == 110.0

    def test_volume_matching_penalises_misallocation(self):
        actual = {5: 100.0, 7: 60.0}
        # right links, but volumes swapped
        preds = [Prediction(7, 100 / 160), Prediction(5, 60 / 160)]
        strict = volume_matched_bytes(actual, preds)
        assert strict < matched_bytes(actual, preds)
        assert strict == pytest.approx(60.0 + 60.0)


class TestEvaluateAccuracy:
    def _actuals(self):
        return {
            ctx(1): {5: 80.0, 7: 20.0},
            ctx(2): {9: 100.0},
        }

    def test_oracle_unrestricted_is_perfect(self):
        actuals = self._actuals()
        oracle = OracleModel(FEATURES_AP)
        for context, by_link in actuals.items():
            for link, b in by_link.items():
                oracle.observe(context, link, b)
        assert evaluate_accuracy(actuals, oracle, k=10) == pytest.approx(1.0)

    def test_top1_oracle_matches_dominant_mass(self):
        actuals = self._actuals()
        oracle = OracleModel(FEATURES_AP)
        for context, by_link in actuals.items():
            for link, b in by_link.items():
                oracle.observe(context, link, b)
        # top-1: 80 of flow 1 + 100 of flow 2 = 180/200
        assert evaluate_accuracy(actuals, oracle, k=1) == pytest.approx(0.9)

    def test_empty_actuals(self):
        model = HistoricalModel(FEATURES_AP)
        assert evaluate_accuracy({}, model, 3) == 0.0

    def test_unavailable_prior_passed_through(self):
        actuals = {ctx(1): {7: 100.0}}
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(1), 5, 100.0)  # predicts the dead link
        model.observe(ctx(1), 7, 10.0)
        without = evaluate_accuracy(actuals, model, 1)
        with_prior = evaluate_accuracy(actuals, model, 1,
                                       unavailable=frozenset({5}))
        assert without == 0.0
        assert with_prior == pytest.approx(1.0)

    def test_model_with_no_prediction_scores_zero(self):
        actuals = {ctx(1): {5: 100.0}}
        model = HistoricalModel(FEATURES_AP)
        assert evaluate_accuracy(actuals, model, 3) == 0.0

    def test_strict_volume_variant(self):
        actuals = {ctx(1): {5: 100.0}}
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(1), 5, 50.0)
        model.observe(ctx(1), 7, 50.0)  # model thinks 50/50
        loose = evaluate_accuracy(actuals, model, 2)
        strict = evaluate_accuracy(actuals, model, 2, strict_volumes=True)
        assert loose == pytest.approx(1.0)
        assert strict == pytest.approx(0.5)


class TestHelpers:
    def test_accuracy_table_shape(self):
        actuals = {ctx(1): {5: 100.0}}
        model = HistoricalModel(FEATURES_AP, name="m")
        model.observe(ctx(1), 5, 1.0)
        table = accuracy_table(actuals, [model], ks=(1, 3))
        assert table == {"m": {1: 1.0, 3: 1.0}}

    def test_merge_actuals(self):
        a = {ctx(1): {5: 10.0}}
        b = {ctx(1): {5: 5.0, 7: 1.0}, ctx(2): {9: 2.0}}
        merged = merge_actuals([a, b])
        assert merged[ctx(1)] == {5: 15.0, 7: 1.0}
        assert merged[ctx(2)] == {9: 2.0}

    def test_total_bytes(self):
        assert total_bytes({ctx(1): {5: 10.0, 7: 2.0}}) == 12.0
