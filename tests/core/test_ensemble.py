"""Tests for sequential ensembles."""

import pytest

from repro.core import (
    FEATURES_A,
    FEATURES_AL,
    FEATURES_AP,
    HistoricalModel,
    SequentialEnsemble,
)
from repro.pipeline import FlowContext


def ctx(asn=1, prefix=10, loc=0, region=0, service=0):
    return FlowContext(asn, prefix, loc, region, service)


@pytest.fixture()
def suite():
    ap = HistoricalModel(FEATURES_AP)
    al = HistoricalModel(FEATURES_AL)
    a = HistoricalModel(FEATURES_A)
    # prefix 10 known to all three; prefix 11 only at AL/A grain via
    # pooling; AS 2 unknown everywhere
    for model in (ap, al, a):
        model.observe(ctx(prefix=10), 5, 100.0)
        model.observe(ctx(prefix=10), 7, 50.0)
    return ap, al, a


class TestSequentialFallback:
    def test_first_model_answers_when_it_can(self, suite):
        ap, al, a = suite
        ensemble = SequentialEnsemble([ap, al, a])
        preds = ensemble.predict(ctx(prefix=10), 2)
        assert preds == ap.predict(ctx(prefix=10), 2)
        assert ensemble.answering_model(ctx(prefix=10)) == "Hist_AP"

    def test_falls_back_on_unseen_tuple(self, suite):
        ap, al, a = suite
        ensemble = SequentialEnsemble([ap, al, a])
        # new prefix from the same AS+loc: AP has nothing, AL pools
        preds = ensemble.predict(ctx(prefix=11), 2)
        assert preds
        assert ensemble.answering_model(ctx(prefix=11)) == "Hist_AL"

    def test_falls_through_to_last(self, suite):
        ap, al, a = suite
        # a only-A-can-answer flow: same AS+dest, different loc & prefix
        flow = ctx(prefix=12, loc=9)
        ensemble = SequentialEnsemble([ap, al, a])
        assert ensemble.answering_model(flow) == "Hist_A"
        assert ensemble.predict(flow, 1)

    def test_no_answer_anywhere(self, suite):
        ap, al, a = suite
        ensemble = SequentialEnsemble([ap, al, a])
        stranger = ctx(asn=2, prefix=99, loc=4, region=3, service=2)
        assert ensemble.predict(stranger, 3) == []
        assert ensemble.answering_model(stranger) is None

    def test_fallback_when_all_links_unavailable_in_first(self, suite):
        """§3.3.1: 'resort to model B if there is no prediction in A' —
        including when A's only links are withdrawn."""
        ap, al, a = suite
        al.observe(ctx(prefix=10), 9, 10.0)  # AL knows an extra link
        ensemble = SequentialEnsemble([ap, al, a])
        unavailable = frozenset({5, 7})
        preds = ensemble.predict(ctx(prefix=10), 2, unavailable)
        assert [p.link_id for p in preds] == [9]


class TestEnsembleAPI:
    def test_name_composition(self, suite):
        ap, al, a = suite
        assert SequentialEnsemble([ap, al, a]).name == "Hist_AP/Hist_AL/Hist_A"
        assert SequentialEnsemble([ap], name="solo").name == "solo"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SequentialEnsemble([])

    def test_size_is_sum(self, suite):
        ap, al, a = suite
        ensemble = SequentialEnsemble([ap, al, a])
        assert ensemble.size() == ap.size() + al.size() + a.size()
