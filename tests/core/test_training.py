"""Tests for the counts accumulator and model fitting."""


from repro.core import (
    FEATURES_A,
    FEATURES_AP,
    CountsAccumulator,
    HistoricalModel,
)
from repro.pipeline import AggRecord, FlowContext


def ctx(prefix, asn=1):
    return FlowContext(asn, prefix, 0, 0, 0)


def rec(hour, link, prefix, bytes_, asn=1):
    return AggRecord(hour, link, asn, prefix, 0, 0, 0, bytes_)


class TestAccumulation:
    def test_consume_hour(self):
        acc = CountsAccumulator()
        acc.consume_hour(0, [rec(0, 5, 1, 10.0), rec(0, 5, 1, 5.0)])
        acc.consume_hour(1, [rec(1, 5, 1, 5.0)])
        assert acc.counts[(ctx(1), 5)] == 20.0
        assert acc.total_bytes() == 20.0
        assert len(acc) == 1

    def test_add_ignores_nonpositive(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 0.0)
        acc.add(ctx(1), 5, -3.0)
        assert len(acc) == 0

    def test_merge(self):
        a = CountsAccumulator()
        b = CountsAccumulator()
        a.add(ctx(1), 5, 10.0)
        b.add(ctx(1), 5, 2.0)
        b.add(ctx(2), 7, 1.0)
        a.merge(b)
        assert a.counts[(ctx(1), 5)] == 12.0
        assert a.counts[(ctx(2), 7)] == 1.0

    def test_fit_trains_and_finalizes(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 10.0)
        acc.add(ctx(1), 7, 30.0)
        ap = HistoricalModel(FEATURES_AP)
        a = HistoricalModel(FEATURES_A)
        acc.fit([ap, a])
        assert ap.predict(ctx(1), 1)[0].link_id == 7
        assert a.predict(ctx(99), 1)[0].link_id == 7  # pooled at A grain

    def test_actuals_reshape(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 10.0)
        acc.add(ctx(1), 7, 2.0)
        acc.add(ctx(2), 5, 1.0)
        actuals = acc.actuals()
        assert actuals[ctx(1)] == {5: 10.0, 7: 2.0}
        assert actuals[ctx(2)] == {5: 1.0}

    def test_top1_links(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 10.0)
        acc.add(ctx(1), 7, 30.0)
        acc.add(ctx(2), 9, 1.0)
        assert acc.top1_links() == {ctx(1): 7, ctx(2): 9}

    def test_top1_tie_break_lowest_link(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 9, 10.0)
        acc.add(ctx(1), 5, 10.0)
        assert acc.top1_links()[ctx(1)] == 5


class TestColumnarAccumulation:
    """add_columns/drain must equal the per-record walk exactly."""

    @staticmethod
    def columns(hour, rows):
        import numpy as np
        from repro.pipeline import AggColumns

        link, asn, prefix, loc, region, service, bytes_ = zip(*rows)
        return AggColumns(
            hour,
            np.array(link, dtype=np.int64), np.array(asn, dtype=np.int64),
            np.array(prefix, dtype=np.int64), np.array(loc, dtype=np.int64),
            np.array(region, dtype=np.int64),
            np.array(service, dtype=np.int64), np.array(bytes_))

    def test_matches_consume_hour(self):
        hours = {
            0: [(5, 1, 1, 0, 0, 0, 10.0), (5, 1, 1, 0, 0, 0, 5.0),
                (7, 1, 2, 0, 1, 0, 2.5)],
            1: [(5, 1, 1, 0, 0, 0, 5.0), (9, 2, 3, 1, 0, 1, 1.25)],
        }
        columnar = CountsAccumulator()
        reference = CountsAccumulator()
        for hour, rows in hours.items():
            cols = self.columns(hour, rows)
            columnar.add_columns(cols)
            reference.consume_hour(hour, cols.to_records())
        columnar.drain()
        assert columnar.counts == reference.counts

    def test_consumers_auto_drain(self):
        acc = CountsAccumulator()
        acc.add_columns(self.columns(0, [(5, 1, 1, 0, 0, 0, 10.0)]))
        assert len(acc) == 1          # __len__ drains
        acc.add_columns(self.columns(1, [(5, 1, 1, 0, 0, 0, 2.0)]))
        assert acc.total_bytes() == 12.0
        assert acc.top1_links() == {ctx(1): 5}

    def test_drain_is_idempotent_and_merges_with_add(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 1.0)
        acc.add_columns(self.columns(0, [(5, 1, 1, 0, 0, 0, 2.0)]))
        acc.drain()
        acc.drain()
        assert acc.counts == {(ctx(1), 5): 3.0}

    def test_empty_columns_ignored(self):
        import numpy as np
        from repro.pipeline import AggColumns

        empty_i = np.empty(0, dtype=np.int64)
        acc = CountsAccumulator()
        acc.add_columns(AggColumns(0, empty_i, empty_i, empty_i, empty_i,
                                   empty_i, empty_i, np.empty(0)))
        acc.drain()
        assert len(acc) == 0


class TestSubtractAndRemove:
    def test_subtract_inverts_merge_for_integer_bytes(self):
        base = CountsAccumulator()
        base.add(ctx(1), 5, 10.0)
        day = CountsAccumulator()
        day.add(ctx(1), 5, 3.0)
        day.add(ctx(2), 7, 4.0)
        base.merge(day)
        base.subtract(day)
        assert base.counts == {(ctx(1), 5): 10.0}

    def test_subtract_drops_keys_reaching_zero(self):
        base = CountsAccumulator()
        day = CountsAccumulator()
        day.add(ctx(1), 5, 2.0)
        base.merge(day)
        base.subtract(day)
        assert len(base) == 0

    def test_subtract_unknown_key_raises(self):
        import pytest

        base = CountsAccumulator()
        base.add(ctx(1), 5, 1.0)
        other = CountsAccumulator()
        other.add(ctx(9), 5, 1.0)
        with pytest.raises(KeyError):
            base.subtract(other)

    def test_subtract_with_refold_is_bit_identical(self):
        """Refolding survivors matches merging them from scratch."""
        days = []
        for day_index in range(4):
            day = CountsAccumulator()
            # non-integral bytes: plain -= would round differently
            day.add(ctx(1), 5, 0.1 + day_index * 1.7)
            day.add(ctx(2), 7, 0.3 / (day_index + 1))
            days.append(day)
        window = CountsAccumulator()
        for day in days:
            window.merge(day)
        window.subtract(days[0], refold=days[1:])
        expected = CountsAccumulator()
        for day in days[1:]:
            expected.merge(day)
        assert window.counts == expected.counts

    def test_subtract_with_refold_drops_vanished_keys(self):
        only_day0 = CountsAccumulator()
        only_day0.add(ctx(3), 9, 2.5)
        day1 = CountsAccumulator()
        day1.add(ctx(1), 5, 1.0)
        window = CountsAccumulator()
        window.merge(only_day0)
        window.merge(day1)
        window.subtract(only_day0, refold=[day1])
        assert window.counts == {(ctx(1), 5): 1.0}

    def test_remove_pops_one_key(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 10.0)
        acc.add(ctx(1), 7, 2.0)
        assert acc.remove(ctx(1), 5) == 10.0
        assert acc.remove(ctx(1), 5) == 0.0   # already gone
        assert acc.counts == {(ctx(1), 7): 2.0}


class TestProjection:
    def test_project_groups_by_feature_key(self):
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 10.0)          # same A-key as the next two
        acc.add(ctx(2), 5, 4.0)
        acc.add(ctx(2), 7, 1.0)
        acc.add(ctx(1, asn=2), 5, 8.0)    # different AS
        projection = acc.project(FEATURES_A)
        assert projection == {
            (1, 0, 0): {5: 14.0, 7: 1.0},
            (2, 0, 0): {5: 8.0},
        }

    def test_project_matches_observe_path(self):
        """Feeding a projection reproduces per-record observe() exactly."""
        acc = CountsAccumulator()
        acc.add(ctx(1), 5, 0.7)
        acc.add(ctx(2), 5, 1.9)
        acc.add(ctx(3), 7, 2.2)
        reference = HistoricalModel(FEATURES_A)
        acc.fit([reference])
        via_projection = HistoricalModel(FEATURES_A)
        for key, links in acc.project(FEATURES_A).items():
            for link_id, bytes_ in links.items():
                via_projection.observe_aggregate(key, link_id, bytes_)
        via_projection.finalize()
        assert via_projection.rankings() == reference.rankings()
