"""Tests for the AL+G geographic completion."""

import pytest

from repro.core import FEATURES_AL, GeoAugmentedModel, HistoricalModel
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


def ctx(asn=1, prefix=10, loc=0, region=0, service=0):
    return FlowContext(asn, prefix, loc, region, service)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 100.0),
        PeeringLink(1, 100, "iad", "iad-er2", 100.0),
        PeeringLink(2, 100, "atl", "atl-er1", 100.0),
        PeeringLink(3, 100, "tyo", "tyo-er1", 100.0),
        PeeringLink(4, 200, "iad", "iad-er1", 100.0),
    ]
    return CloudWAN(8075, links,
                    [Region("iad-region", "iad")],
                    [DestPrefix(0, "100.64.0.0/24", "iad-region", "web")],
                    metros)


@pytest.fixture()
def model(wan):
    base = HistoricalModel(FEATURES_AL)
    base.observe(ctx(), 0, 100.0)  # only one link ever seen
    return GeoAugmentedModel(base, wan)


class TestCompletion:
    def test_completes_to_k_by_distance(self, model):
        preds = model.predict(ctx(), 3)
        # base knows link 0 (iad); completion adds the same peer's other
        # links nearest to iad: the parallel iad link, then atl
        assert [p.link_id for p in preds] == [0, 1, 2]

    def test_appended_scores_below_base(self, model):
        preds = model.predict(ctx(), 3)
        assert preds[0].score > preds[1].score > preds[2].score

    def test_does_not_cross_peers(self, model):
        # link 4 belongs to a different AS at the same metro: never added
        preds = model.predict(ctx(), 4)
        assert 4 not in [p.link_id for p in preds]
        assert [p.link_id for p in preds] == [0, 1, 2, 3]

    def test_no_completion_needed(self, wan):
        base = HistoricalModel(FEATURES_AL)
        for link, b in ((0, 100.0), (1, 50.0), (2, 25.0)):
            base.observe(ctx(), link, b)
        model = GeoAugmentedModel(base, wan)
        assert model.predict(ctx(), 3) == base.predict(ctx(), 3)

    def test_unknown_flow_no_anchor(self, model):
        assert model.predict(ctx(asn=9), 3) == []
        assert not model.has_prediction(ctx(asn=9))


class TestWithdrawnAnchor:
    def test_withdrawn_top_link_still_anchors(self, model):
        """The unseen-outage case: the flow's only historical link is
        down, but its geography still guides the completion."""
        preds = model.predict(ctx(), 3, unavailable=frozenset({0}))
        assert [p.link_id for p in preds] == [1, 2, 3]

    def test_has_prediction_with_unavailable(self, model):
        assert model.has_prediction(ctx(), frozenset({0}))

    def test_unavailable_excluded_from_completion(self, model):
        preds = model.predict(ctx(), 3, unavailable=frozenset({0, 1}))
        assert [p.link_id for p in preds] == [2, 3]


class TestNaming:
    def test_default_name(self, model):
        assert model.name == "Hist_AL+G"

    def test_size_delegates(self, model):
        assert model.size() == 1
