"""Tests for feature sets."""

import pytest

from repro.core import FEATURES_A, FEATURES_AL, FEATURES_AP, FeatureSet
from repro.core.features import FEATURES_APL
from repro.pipeline import FlowContext

CTX = FlowContext(src_asn=64500, src_prefix=77, src_loc=3, dest_region=1,
                  dest_service=2)


class TestFeatureSets:
    def test_a_key(self):
        assert FEATURES_A.key(CTX) == (64500, 1, 2)

    def test_ap_key(self):
        assert FEATURES_AP.key(CTX) == (64500, 77, 1, 2)

    def test_al_key(self):
        assert FEATURES_AL.key(CTX) == (64500, 3, 1, 2)

    def test_apl_key(self):
        assert FEATURES_APL.key(CTX) == (64500, 77, 3, 1, 2)

    def test_single_field_set_returns_tuple(self):
        fs = FeatureSet("just-as", ("src_asn",))
        assert fs.key(CTX) == (64500,)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet("bogus", ("no_such_field",))

    def test_apl_equivalent_to_ap_when_loc_function_of_prefix(self):
        """The paper's observation: one location per /24 makes APL == AP
        as a partition of flows."""
        contexts = [
            FlowContext(1, p, p % 5, 0, 0) for p in range(50)
        ]
        ap_partition = {}
        apl_partition = {}
        for ctx in contexts:
            ap_partition.setdefault(FEATURES_AP.key(ctx), set()).add(ctx)
            apl_partition.setdefault(FEATURES_APL.key(ctx), set()).add(ctx)
        assert (sorted(map(sorted, ap_partition.values()))
                == sorted(map(sorted, apl_partition.values())))
