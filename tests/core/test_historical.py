"""Tests for the historical model."""

import pytest

from repro.core import FEATURES_A, FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext


def ctx(asn=1, prefix=10, loc=0, region=0, service=0):
    return FlowContext(asn, prefix, loc, region, service)


class TestTraining:
    def test_ranking_by_bytes(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 300.0)
        model.observe(ctx(), 9, 50.0)
        preds = model.predict(ctx(), 3)
        assert [p.link_id for p in preds] == [7, 5, 9]

    def test_scores_are_byte_fractions(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 300.0)
        preds = model.predict(ctx(), 2)
        assert preds[0].score == pytest.approx(0.75)
        assert preds[1].score == pytest.approx(0.25)

    def test_observations_accumulate(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 150.0)
        assert model.predict(ctx(), 1)[0].link_id == 5

    def test_zero_bytes_ignored(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 0.0)
        model.observe(ctx(), 5, -10.0)
        assert model.predict(ctx(), 1) == []
        assert model.size() == 0

    def test_observe_after_finalize_retrains(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.finalize()
        assert model.predict(ctx(), 1)[0].link_id == 5
        model.observe(ctx(), 7, 500.0)
        assert model.predict(ctx(), 1)[0].link_id == 7

    def test_keep_top_truncates(self):
        model = HistoricalModel(FEATURES_AP, keep_top=2)
        for link, b in ((1, 100.0), (2, 80.0), (3, 60.0)):
            model.observe(ctx(), link, b)
        model.finalize()
        assert len(model.predict(ctx(), 5)) == 2

    def test_deterministic_tie_break(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 9, 100.0)
        model.observe(ctx(), 3, 100.0)
        assert model.predict(ctx(), 1)[0].link_id == 3


class TestNoTransferLearning:
    def test_unseen_tuple_no_prediction(self):
        """The defining limitation of the historical model (§3.3.1)."""
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=10), 5, 100.0)
        assert model.predict(ctx(prefix=11), 3) == []
        assert not model.has_prediction(ctx(prefix=11))

    def test_coarser_features_do_transfer(self):
        model = HistoricalModel(FEATURES_A)
        model.observe(ctx(prefix=10), 5, 100.0)
        # different prefix, same AS+dest: the A model pools them
        assert model.predict(ctx(prefix=11), 1)[0].link_id == 5


class TestAvailabilityPrior:
    def test_unavailable_excluded(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 300.0)
        model.observe(ctx(), 7, 100.0)
        preds = model.predict(ctx(), 2, unavailable=frozenset({5}))
        assert [p.link_id for p in preds] == [7]

    def test_all_unavailable_no_prediction(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 300.0)
        assert model.predict(ctx(), 3, unavailable=frozenset({5})) == []
        assert not model.has_prediction(ctx(), frozenset({5}))

    def test_k_honoured_after_exclusion(self):
        model = HistoricalModel(FEATURES_AP)
        for link, b in ((1, 50.0), (2, 40.0), (3, 30.0), (4, 20.0)):
            model.observe(ctx(), link, b)
        preds = model.predict(ctx(), 2, unavailable=frozenset({1}))
        assert [p.link_id for p in preds] == [2, 3]


class TestIntrospection:
    def test_size_counts_tuples(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=1), 5, 1.0)
        model.observe(ctx(prefix=2), 5, 1.0)
        model.observe(ctx(prefix=2), 7, 1.0)
        assert model.size() == 2

    def test_bytes_for(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 12.0)
        assert model.bytes_for(ctx()) == {5: 12.0}
        assert model.bytes_for(ctx(prefix=99)) == {}

    def test_default_name(self):
        assert HistoricalModel(FEATURES_AP).name == "Hist_AP"
        assert HistoricalModel(FEATURES_AP, name="X").name == "X"


class TestExactMode:
    def test_unobserve_requires_exact(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        with pytest.raises(RuntimeError):
            model.unobserve(ctx(), 5, 100.0)

    def test_unobserve_inverts_observe(self):
        model = HistoricalModel(FEATURES_AP, exact=True)
        model.observe(ctx(), 5, 0.1)
        model.observe(ctx(), 5, 0.7)
        model.observe(ctx(), 7, 0.3)
        model.unobserve(ctx(), 5, 0.7)
        reference = HistoricalModel(FEATURES_AP, exact=True)
        reference.observe(ctx(), 5, 0.1)
        reference.observe(ctx(), 7, 0.3)
        assert model.bytes_for(ctx()) == reference.bytes_for(ctx())
        assert model.rankings() == reference.rankings()

    def test_fully_unobserved_pair_vanishes(self):
        model = HistoricalModel(FEATURES_AP, exact=True)
        model.observe(ctx(), 5, 0.1)
        model.observe(ctx(), 5, 1e16)   # naive -= would not recover 0.1
        model.observe(ctx(), 7, 2.0)
        model.unobserve(ctx(), 5, 1e16)
        model.unobserve(ctx(), 5, 0.1)
        assert model.bytes_for(ctx()) == {7: 2.0}
        assert [p.link_id for p in model.predict(ctx(), 3)] == [7]

    def test_fully_unobserved_tuple_vanishes(self):
        model = HistoricalModel(FEATURES_AP, exact=True)
        model.observe(ctx(), 5, 3.5)
        model.finalize()
        model.unobserve(ctx(), 5, 3.5)
        assert model.size() == 0
        assert model.predict(ctx(), 1) == []
        assert not model.has_prediction(ctx())

    def test_exact_mode_order_free(self):
        """Same observations, any order: bit-identical rankings."""
        observations = [(5, 0.1), (7, 1e9), (5, 2.2), (9, 0.333), (7, 0.1)]
        forward = HistoricalModel(FEATURES_AP, exact=True)
        backward = HistoricalModel(FEATURES_AP, exact=True)
        for link, bytes_ in observations:
            forward.observe(ctx(), link, bytes_)
        for link, bytes_ in reversed(observations):
            backward.observe(ctx(), link, bytes_)
        assert forward.bytes_for(ctx()) == backward.bytes_for(ctx())
        assert forward.rankings() == backward.rankings()


class TestLazyReranking:
    def test_observe_dirties_only_touched_tuple(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=1), 5, 10.0)
        model.observe(ctx(prefix=2), 7, 10.0)
        model.finalize()
        model.observe(ctx(prefix=1), 9, 50.0)
        # the full ranking table survives; only the touched key is stale
        assert model._ranked is not None
        assert model._dirty == {model.feature_set.key(ctx(prefix=1))}
        assert model.predict(ctx(prefix=1), 1)[0].link_id == 9
        assert model._dirty == set()

    def test_finalize_reranks_only_dirty(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=1), 5, 10.0)
        model.observe(ctx(prefix=2), 7, 10.0)
        model.finalize()
        stale_ranking = model._ranked[model.feature_set.key(ctx(prefix=2))]
        model.observe(ctx(prefix=1), 9, 50.0)
        model.finalize()
        # untouched tuple's ranking object was not rebuilt
        assert model._ranked[
            model.feature_set.key(ctx(prefix=2))] is stale_ranking

    def test_no_ranking_work_before_first_query(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 10.0)
        assert model._ranked is None and model._dirty == set()

    def test_group_key_is_feature_key(self):
        model = HistoricalModel(FEATURES_AP)
        assert model.group_key(ctx()) == model.feature_set.key(ctx())
