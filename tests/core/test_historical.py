"""Tests for the historical model."""

import pytest

from repro.core import FEATURES_A, FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext


def ctx(asn=1, prefix=10, loc=0, region=0, service=0):
    return FlowContext(asn, prefix, loc, region, service)


class TestTraining:
    def test_ranking_by_bytes(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 300.0)
        model.observe(ctx(), 9, 50.0)
        preds = model.predict(ctx(), 3)
        assert [p.link_id for p in preds] == [7, 5, 9]

    def test_scores_are_byte_fractions(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 300.0)
        preds = model.predict(ctx(), 2)
        assert preds[0].score == pytest.approx(0.75)
        assert preds[1].score == pytest.approx(0.25)

    def test_observations_accumulate(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 5, 100.0)
        model.observe(ctx(), 7, 150.0)
        assert model.predict(ctx(), 1)[0].link_id == 5

    def test_zero_bytes_ignored(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 0.0)
        model.observe(ctx(), 5, -10.0)
        assert model.predict(ctx(), 1) == []
        assert model.size() == 0

    def test_observe_after_finalize_retrains(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 100.0)
        model.finalize()
        assert model.predict(ctx(), 1)[0].link_id == 5
        model.observe(ctx(), 7, 500.0)
        assert model.predict(ctx(), 1)[0].link_id == 7

    def test_keep_top_truncates(self):
        model = HistoricalModel(FEATURES_AP, keep_top=2)
        for link, b in ((1, 100.0), (2, 80.0), (3, 60.0)):
            model.observe(ctx(), link, b)
        model.finalize()
        assert len(model.predict(ctx(), 5)) == 2

    def test_deterministic_tie_break(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 9, 100.0)
        model.observe(ctx(), 3, 100.0)
        assert model.predict(ctx(), 1)[0].link_id == 3


class TestNoTransferLearning:
    def test_unseen_tuple_no_prediction(self):
        """The defining limitation of the historical model (§3.3.1)."""
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=10), 5, 100.0)
        assert model.predict(ctx(prefix=11), 3) == []
        assert not model.has_prediction(ctx(prefix=11))

    def test_coarser_features_do_transfer(self):
        model = HistoricalModel(FEATURES_A)
        model.observe(ctx(prefix=10), 5, 100.0)
        # different prefix, same AS+dest: the A model pools them
        assert model.predict(ctx(prefix=11), 1)[0].link_id == 5


class TestAvailabilityPrior:
    def test_unavailable_excluded(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 300.0)
        model.observe(ctx(), 7, 100.0)
        preds = model.predict(ctx(), 2, unavailable=frozenset({5}))
        assert [p.link_id for p in preds] == [7]

    def test_all_unavailable_no_prediction(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 300.0)
        assert model.predict(ctx(), 3, unavailable=frozenset({5})) == []
        assert not model.has_prediction(ctx(), frozenset({5}))

    def test_k_honoured_after_exclusion(self):
        model = HistoricalModel(FEATURES_AP)
        for link, b in ((1, 50.0), (2, 40.0), (3, 30.0), (4, 20.0)):
            model.observe(ctx(), link, b)
        preds = model.predict(ctx(), 2, unavailable=frozenset({1}))
        assert [p.link_id for p in preds] == [2, 3]


class TestIntrospection:
    def test_size_counts_tuples(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(prefix=1), 5, 1.0)
        model.observe(ctx(prefix=2), 5, 1.0)
        model.observe(ctx(prefix=2), 7, 1.0)
        assert model.size() == 2

    def test_bytes_for(self):
        model = HistoricalModel(FEATURES_AP)
        model.observe(ctx(), 5, 12.0)
        assert model.bytes_for(ctx()) == {5: 12.0}
        assert model.bytes_for(ctx(prefix=99)) == {}

    def test_default_name(self):
        assert HistoricalModel(FEATURES_AP).name == "Hist_AP"
        assert HistoricalModel(FEATURES_AP, name="X").name == "X"
