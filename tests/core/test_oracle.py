"""Tests for the restricted-k oracle."""

import pytest

from repro.core import FEATURES_AP, OracleModel, evaluate_accuracy
from repro.pipeline import FlowContext


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


class TestOracle:
    def _actuals(self):
        return {
            ctx(1): {5: 70.0, 7: 20.0, 9: 10.0},
            ctx(2): {3: 100.0},
        }

    def _oracle(self, actuals):
        oracle = OracleModel(FEATURES_AP)
        for context, by_link in actuals.items():
            for link, bytes_ in by_link.items():
                oracle.observe(context, link, bytes_)
        oracle.finalize()
        return oracle

    def test_is_a_historical_model_over_test_data(self):
        actuals = self._actuals()
        oracle = self._oracle(actuals)
        preds = oracle.predict(ctx(1), 3)
        assert [p.link_id for p in preds] == [5, 7, 9]

    def test_restriction_to_k_loses_tail_bytes(self):
        actuals = self._actuals()
        oracle = self._oracle(actuals)
        acc1 = evaluate_accuracy(actuals, oracle, 1)
        acc3 = evaluate_accuracy(actuals, oracle, 3)
        assert acc1 == pytest.approx(170.0 / 200.0)
        assert acc3 == pytest.approx(1.0)

    def test_name(self):
        assert OracleModel(FEATURES_AP).name == "Oracle_AP"
