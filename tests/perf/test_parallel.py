"""Serial/parallel equivalence of the pipeline runner.

The contract under test is the tentpole guarantee: fanning the hourly
pipeline over a process pool yields *bit-identical* results to the
serial path — same aggregated records, same training counts, same
trained-model predictions — for any worker count and sharding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FEATURES_A, FEATURES_AL, HistoricalModel
from repro.core.training import CountsAccumulator
from repro.experiments import EvaluationRunner
from repro.perf import ParallelPipelineRunner, make_shards

WINDOW_HOURS = 24


@pytest.fixture(scope="module")
def pipeline(small_scenario):
    """One shared pool for the module (startup costs a second)."""
    with ParallelPipelineRunner(scenario=small_scenario, n_workers=2,
                                shard_hours=7) as runner:
        yield runner


class TestMakeShards:
    def test_covers_window_contiguously(self):
        shards = make_shards(3, 50, 4)
        assert shards[0][0] == 3
        assert shards[-1][1] == 50
        for (_, hi), (lo, _) in zip(shards, shards[1:]):
            assert hi == lo

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in make_shards(0, 50, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_alignment(self):
        shards = make_shards(0, 24 * 7, 3, align_hours=24)
        assert all(lo % 24 == 0 for lo, _ in shards)
        assert shards[-1][1] == 24 * 7

    def test_more_shards_than_hours(self):
        shards = make_shards(0, 3, 10)
        assert shards == [(0, 1), (1, 2), (2, 3)]

    def test_empty_window(self):
        assert make_shards(5, 5, 4) == []

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            make_shards(0, 24, 2, align_hours=0)


class TestEquivalence:
    def test_hour_columns_bit_identical(self, pipeline):
        serial = list(pipeline.iter_hour_columns(0, WINDOW_HOURS,
                                                 parallel=False))
        parallel = list(pipeline.iter_hour_columns(0, WINDOW_HOURS,
                                                   parallel=True))
        assert [c.hour for c in parallel] == list(range(WINDOW_HOURS))
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert s.hour == p.hour
            for i in range(1, 8):  # every array field, bytes included
                assert np.array_equal(s[i], p[i])

    def test_agg_records_identical(self, pipeline):
        serial = dict(pipeline.iter_hours(0, WINDOW_HOURS, parallel=False))
        parallel = dict(pipeline.iter_hours(0, WINDOW_HOURS, parallel=True))
        assert serial == parallel  # full AggRecord equality, order included

    def test_counts_and_trained_models_identical(self, pipeline):
        par = pipeline.collect_counts(0, WINDOW_HOURS, parallel=True)
        ser = pipeline.collect_counts(0, WINDOW_HOURS, parallel=False)
        # reference: per-record dict accumulation over the serial stream
        ref = CountsAccumulator()
        for hour, records in pipeline.iter_hours(0, WINDOW_HOURS,
                                                 parallel=False):
            ref.consume_hour(hour, records)
        assert par.counts == ser.counts == ref.counts  # bit-identical floats

        models = {}
        for label, counts in (("par", par), ("ser", ser)):
            hist_a = HistoricalModel(FEATURES_A)
            hist_al = HistoricalModel(FEATURES_AL)
            counts.fit([hist_a, hist_al])
            models[label] = (hist_a, hist_al)
        contexts = pipeline.scenario.flow_contexts
        for pm, sm in zip(models["par"], models["ser"]):
            assert pm.size() == sm.size()
            for context in contexts:
                assert pm.predict(context, 3, frozenset()) == \
                    sm.predict(context, 3, frozenset())

    def test_stats_match_serial(self, small_scenario):
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=2, shard_hours=6) as runner:
            list(runner.iter_hour_columns(0, 12, parallel=True))
            par_stats = (runner.stats.records_in, runner.stats.records_out,
                         runner.stats.records_dropped)
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=1) as runner:
            list(runner.iter_hour_columns(0, 12, parallel=False))
            ser_stats = (runner.stats.records_in, runner.stats.records_out,
                         runner.stats.records_dropped)
        assert par_stats == ser_stats
        assert par_stats[0] > 0


class TestCollectWindow:
    def test_matches_evaluation_runner(self, small_scenario, pipeline):
        hours = 48
        parallel = pipeline.collect_window(0, hours)
        serial = EvaluationRunner(small_scenario).collect_window(0, hours)
        assert np.array_equal(parallel.link_matrix, serial.link_matrix)
        assert set(parallel.by_downset) == set(serial.by_downset)
        assert set(parallel.total) == set(serial.total)
        for key, value in serial.total.items():
            assert parallel.total[key] == pytest.approx(value, rel=1e-12)
        for down, pairs in serial.by_downset.items():
            par_pairs = parallel.by_downset[down]
            assert set(par_pairs) == set(pairs)
            for key, value in pairs.items():
                assert par_pairs[key] == pytest.approx(value, rel=1e-12)

    def test_runner_accepts_pipeline(self, small_scenario, pipeline):
        runner = EvaluationRunner(small_scenario, pipeline=pipeline)
        acc = runner.collect_window(0, 24)
        reference = EvaluationRunner(small_scenario).collect_window(0, 24)
        assert np.array_equal(acc.link_matrix, reference.link_matrix)
        # cached: the second call must return the same object
        assert runner.collect_window(0, 24) is acc

    def test_runner_rejects_mismatched_pipeline(self, small_scenario):
        from repro.experiments import Scenario, ScenarioParams

        other = Scenario(ScenarioParams.small(seed=99, horizon_days=10))
        with ParallelPipelineRunner(scenario=other, n_workers=1) as runner:
            with pytest.raises(ValueError, match="must match"):
                EvaluationRunner(small_scenario, pipeline=runner)


class TestPrecomputeTables:
    @staticmethod
    def _deseeding_keys(scenario, n):
        """Removal keys that each take a whole peer down (all its links),
        so every key needs a genuinely different routing table."""
        keys = []
        for asn in sorted(scenario.wan.peer_asns):
            links = scenario.wan.links_of_peer(asn)
            keys.append(frozenset(l.link_id for l in links))
            if len(keys) >= n:
                break
        return keys

    def test_worker_tables_bit_identical(self, small_scenario, pipeline):
        from repro.bgp import IngressSimulator

        keys = self._deseeding_keys(small_scenario, 4)
        assert keys
        installed = pipeline.precompute_tables(keys, parallel=True)
        assert installed == len(keys)
        sim = small_scenario.simulator
        fresh = IngressSimulator(small_scenario.graph, small_scenario.wan,
                                 sim.params, seed=sim.seed)
        for key in keys:
            assert sim.routing_table(key).columns_equal(
                fresh.routing_table(key))

    def test_installed_tables_are_cache_hits(self, small_scenario, pipeline):
        keys = self._deseeding_keys(small_scenario, 3)
        pipeline.precompute_tables(keys, parallel=True)
        sim = small_scenario.simulator
        before = sim.cache_stats()["table_hits"]
        for key in keys:
            sim.routing_table(key)
        assert sim.cache_stats()["table_hits"] == before + len(keys)

    def test_serial_path_and_dedupe(self, small_scenario):
        keys = self._deseeding_keys(small_scenario, 3)
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=1) as runner:
            assert runner.precompute_tables(keys + keys,
                                            parallel=False) == len(keys)
            assert runner.precompute_tables([], parallel=True) == 0
