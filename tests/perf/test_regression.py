"""Tests for the benchmark-regression harness."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BenchReport,
    Regression,
    compare_reports,
    default_meta,
    find_baseline,
    load_report,
    save_report,
)


def report(date="2026-08-01", profile="full", **metrics) -> BenchReport:
    rep = BenchReport(date=date, profile=profile)
    for name, value in metrics.items():
        rep.record(name, value)
    return rep


class TestBenchReport:
    def test_filenames_by_profile(self):
        assert report().filename == "BENCH_2026-08-01.json"
        assert report(profile="smoke").filename == \
            "BENCH_2026-08-01.smoke.json"

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            report().record("stream", -1.0)

    def test_default_meta_has_environment(self):
        meta = default_meta()
        assert "python" in meta and "cpus" in meta

    def test_save_load_round_trip(self, tmp_path):
        original = report(stream=123.5, aggregate=9e5)
        original.meta = {"cpus": "4"}
        path = save_report(original, tmp_path)
        assert path.name == original.filename
        loaded = load_report(path)
        assert loaded == original

    def test_saved_payload_is_plain_json(self, tmp_path):
        path = save_report(report(stream=10.0), tmp_path)
        payload = json.loads(path.read_text())
        assert payload["metrics"] == {"stream": 10.0}
        assert payload["profile"] == "full"


class TestMergeOnSave:
    def test_same_date_save_merges_metrics(self, tmp_path):
        save_report(report(stream=10.0, counts=5.0), tmp_path)
        path = save_report(report(stream=12.0, lint=99.0), tmp_path)
        merged = load_report(path)
        assert merged.metrics == {"stream": 12.0, "counts": 5.0,
                                  "lint": 99.0}

    def test_merge_keeps_old_meta_and_new_wins_on_collision(self, tmp_path):
        first = report(stream=1.0)
        first.meta = {"cpus": "4", "workers": "2"}
        save_report(first, tmp_path)
        second = report(lint=2.0)
        second.meta = {"cpus": "8"}
        merged = load_report(save_report(second, tmp_path))
        assert merged.meta == {"cpus": "8", "workers": "2"}

    def test_corrupt_same_date_file_is_overwritten(self, tmp_path):
        path = tmp_path / report().filename
        path.write_text("{not json")
        merged = load_report(save_report(report(stream=3.0), tmp_path))
        assert merged.metrics == {"stream": 3.0}

    def test_different_profiles_never_merge(self, tmp_path):
        save_report(report(stream=1.0), tmp_path)
        smoke = load_report(
            save_report(report(profile="smoke", lint=2.0), tmp_path))
        assert smoke.metrics == {"lint": 2.0}


class TestFindBaseline:
    def test_latest_of_matching_profile(self, tmp_path):
        save_report(report(date="2026-07-01", stream=1.0), tmp_path)
        save_report(report(date="2026-07-15", stream=2.0), tmp_path)
        save_report(report(date="2026-07-20", profile="smoke", stream=3.0),
                    tmp_path)
        found = find_baseline(tmp_path, profile="full")
        assert found is not None and found.name == "BENCH_2026-07-15.json"
        smoke = find_baseline(tmp_path, profile="smoke")
        assert smoke is not None and "smoke" in smoke.name

    def test_before_excludes_later_but_not_same_date(self, tmp_path):
        save_report(report(date="2026-07-15", stream=1.0), tmp_path)
        save_report(report(date="2026-07-20", stream=2.0), tmp_path)
        found = find_baseline(tmp_path, profile="full", before="2026-07-15")
        assert found is not None and found.name == "BENCH_2026-07-15.json"

    def test_empty_or_missing_directory(self, tmp_path):
        assert find_baseline(tmp_path) is None
        assert find_baseline(tmp_path / "nope") is None

    def test_non_report_files_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text("{}")
        (tmp_path / "BENCH_garbage.json").write_text("{}")
        assert find_baseline(tmp_path) is None


class TestCompareReports:
    def test_drop_past_tolerance_flags(self):
        regressions = compare_reports(report(stream=60.0),
                                      report(stream=100.0), tolerance=0.30)
        assert len(regressions) == 1
        flagged = regressions[0]
        assert flagged.name == "stream"
        assert flagged.change == pytest.approx(-0.40)
        assert "stream" in str(flagged)

    def test_drop_within_tolerance_passes(self):
        assert compare_reports(report(stream=71.0), report(stream=100.0),
                               tolerance=0.30) == []

    def test_improvement_never_flags(self):
        assert compare_reports(report(stream=500.0),
                               report(stream=100.0)) == []

    def test_metrics_missing_from_either_side_skipped(self):
        current = report(stream=100.0, new_metric=1.0)
        baseline = report(stream=100.0, removed_metric=50.0)
        assert compare_reports(current, baseline) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_reports(report(), report(), tolerance=1.5)

    def test_zero_baseline_skipped(self):
        baseline = BenchReport(date="2026-08-01",
                               metrics={"stream": 0.0})
        assert compare_reports(report(stream=0.0), baseline) == []

    def test_regression_change_with_zero_baseline(self):
        assert Regression("x", 0.0, 1.0).change == 0.0
