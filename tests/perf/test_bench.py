"""Tests for the bench command's cheap, deterministic parts.

The pipeline/serving suites are exercised by CI's bench-smoke job (they
build whole scenarios — too slow for tier-1); the lint suite analyzes a
tree that is already in memory-cache-friendly shape, so its wiring is
testable here directly.
"""

import pytest

from repro.perf.bench import SUITES, _bench_lint, run_bench
from repro.perf.regression import BenchReport


def test_lint_is_a_declared_suite():
    assert "lint" in SUITES


def test_unknown_suite_rejected():
    with pytest.raises(SystemExit, match="--suite"):
        run_bench(suite="bogus")


def test_bench_lint_records_cold_and_warm_throughput():
    report = BenchReport(date="2026-08-06")
    _bench_lint(report, rounds=1)
    cold = report.metrics["lint_cold_files_per_s"]
    warm = report.metrics["lint_warm_files_per_s"]
    assert cold > 0.0
    # the warm pass skips parsing and analysis entirely — even a single
    # noisy round must beat the cold pass
    assert warm > cold
