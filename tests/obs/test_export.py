"""Export formats: text, JSON, and the Prometheus golden file."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import (
    FORMATS,
    prometheus_name,
    render_json,
    render_prometheus,
    render_text,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden"


def golden_registry() -> MetricsRegistry:
    """The fixed registry the committed golden file was rendered from."""
    registry = MetricsRegistry()
    registry.counter("service.ingest.hours").inc(48)
    registry.counter("service.ingest.records").inc(1234.5)
    registry.gauge("service.memo_hits").set(7)
    registry.gauge("bgp.simulator.table_misses").set(0)
    hist = registry.histogram("service.retrain.seconds",
                              buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.005, 0.05, 0.5, 2.0):
        hist.observe(value)
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        rendered = render_prometheus(golden_registry().snapshot())
        assert rendered == (GOLDEN / "snapshot.prom").read_text()

    def test_cumulative_buckets_and_inf(self):
        lines = render_prometheus(golden_registry().snapshot()).splitlines()
        buckets = [line for line in lines if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative: never decreases
        assert buckets[-1].startswith(
            'repro_service_retrain_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 5  # +Inf sees every observation

    def test_name_translation(self):
        assert prometheus_name("service.retrain.seconds") == \
            "repro_service_retrain_seconds"
        assert prometheus_name("a-b.c") == "repro_a_b_c"

    def test_ends_with_newline(self):
        assert render_prometheus(golden_registry().snapshot()).endswith("\n")


class TestText:
    def test_sections_and_values(self):
        text = render_text(golden_registry().snapshot())
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "service.ingest.hours" in text
        assert "count=5" in text

    def test_empty_snapshot_placeholder(self):
        assert render_text(MetricsRegistry().snapshot()) == \
            "(no metrics recorded)"


class TestJson:
    def test_valid_and_stable(self):
        rendered = render_json(golden_registry().snapshot())
        payload = json.loads(rendered)
        assert payload["counters"]["service.ingest.hours"] == 48
        assert payload["histograms"]["service.retrain.seconds"]["count"] == 5
        # stable: same registry renders byte-identically
        assert rendered == render_json(golden_registry().snapshot())


def test_formats_tuple_matches_renderers():
    assert FORMATS == ("text", "json", "prometheus")
