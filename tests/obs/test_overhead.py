"""The overhead guarantee: disabled instrumentation must stay ~free.

``docs/observability.md`` promises that leaving the instrumentation
compiled into the hot paths costs nearly nothing while the switch is
off: one global read per facade call, no allocation, no locking.  These
tests guard the *mechanisms* behind that promise (shared no-op objects,
short-circuit returns) and put a deliberately generous ceiling on the
measured cost so a regression — say an eagerly-built argument or an
unconditional registry lookup — fails loudly without making the suite
flaky on slow CI runners.
"""

from __future__ import annotations

import timeit

from repro.obs import runtime as obs
from repro.obs.spans import NOOP_SPAN


class TestMechanisms:
    def test_disabled_span_is_the_shared_singleton(self):
        # no per-call allocation: every disabled span is the same object
        assert obs.span("a") is obs.span("b") is NOOP_SPAN

    def test_disabled_calls_touch_no_state(self):
        obs.count("c", 1.0)
        obs.observe("h", 0.5)
        obs.gauge_set("g", 1.0)
        assert obs.snapshot().empty


class TestMeasuredCeiling:
    def test_disabled_counter_cost_is_bounded(self):
        """A disabled count() must cost no more than a small multiple of
        a plain function call — generous bound, deterministic setup."""

        def baseline():
            obs.enabled()

        def disabled_count():
            obs.count("service.ingest.records", 1.0)

        number = 20_000
        base = min(timeit.repeat(baseline, number=number, repeat=5))
        cost = min(timeit.repeat(disabled_count, number=number, repeat=5))
        # disabled count() does one bool read more than enabled(); 20x
        # headroom absorbs interpreter noise while still catching an
        # accidental registry hit (orders of magnitude slower)
        assert cost < base * 20

    def test_disabled_span_cheaper_than_enabled(self):
        def disabled_span():
            with obs.span("x"):
                pass

        number = 5_000
        off = min(timeit.repeat(disabled_span, number=number, repeat=5))
        obs.enable(fresh=True)
        on = min(timeit.repeat(disabled_span, number=number, repeat=5))
        obs.reset()
        # enabled spans allocate and lock; disabled must not. The margin
        # is intentionally loose — catching inversion, not measuring.
        assert off < on

    def test_disabled_leaves_no_trace_even_after_heavy_use(self):
        for _ in range(1000):
            obs.count("c")
            with obs.span("s"):
                pass
        assert obs.snapshot().empty
        assert obs.tracer().roots() == []
