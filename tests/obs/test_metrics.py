"""Instrument semantics and the cross-process merge contract."""

from __future__ import annotations

import pickle
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_bucketing_le_semantics(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)   # <= 1.0
        hist.observe(1.0)   # boundary: le="1.0" bucket
        hist.observe(5.0)   # <= 10.0
        hist.observe(99.0)  # +Inf overflow
        assert hist.data().counts == (2, 1, 1)
        assert hist.count == 4
        assert hist.total == pytest.approx(105.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_rejects_relayout(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestRegistry:
    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_set_gauges_prefix(self):
        registry = MetricsRegistry()
        registry.set_gauges({"hits": 3, "misses": 1}, prefix="cache.")
        snap = registry.snapshot()
        assert snap.gauges == {"cache.hits": 3.0, "cache.misses": 1.0}

    def test_thread_safety_of_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000.0


class TestSnapshot:
    def test_picklable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == snap.counters
        assert clone.histograms["h"] == snap.histograms["h"]

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(-1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        back = MetricsSnapshot.from_json(snap.to_json())
        assert back == snap

    def test_diff_subtracts_and_drops_zeros(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3.0)
        registry.counter("b").inc(1.0)
        registry.histogram("h").observe(0.01)
        before = registry.snapshot()
        registry.counter("a").inc(2.0)
        registry.histogram("h").observe(0.02)
        delta = registry.snapshot().diff(before)
        assert delta.counters == {"a": 2.0}  # b unchanged: dropped
        assert delta.histograms["h"].count == 1

    def test_empty_property(self):
        assert MetricsRegistry().snapshot().empty

    def test_mismatched_bucket_merge_raises(self):
        one = HistogramData(buckets=(1.0,), counts=(1, 0), total=0.5, count=1)
        other = HistogramData(buckets=(2.0,), counts=(1, 0), total=0.5,
                              count=1)
        with pytest.raises(ValueError):
            one.merge(other)


# -- the cross-process merge contract ----------------------------------------

observations = st.lists(
    st.floats(min_value=0.0, max_value=20.0,
              allow_nan=False, allow_infinity=False),
    max_size=30)


def _shard_registry(counter_incs, observed):
    registry = MetricsRegistry()
    for amount in counter_incs:
        registry.counter("work.items").inc(amount)
    for value in observed:
        registry.histogram("work.seconds").observe(value)
    return registry


class TestMergeAcrossWorkers:
    """Merging per-worker snapshots must equal doing the work serially —
    the property `ParallelPipelineRunner` relies on when it folds shard
    deltas back into the parent registry."""

    @given(st.lists(st.tuples(
        st.lists(st.floats(min_value=0.0, max_value=100.0,
                           allow_nan=False, allow_infinity=False),
                 max_size=10),
        observations), min_size=1, max_size=5))
    def test_merge_equals_serial(self, shards):
        parent = MetricsRegistry()
        serial = MetricsRegistry()
        for counter_incs, observed in shards:
            parent.merge(_shard_registry(counter_incs, observed).snapshot())
            for amount in counter_incs:
                serial.counter("work.items").inc(amount)
            for value in observed:
                serial.histogram("work.seconds").observe(value)
        merged, expected = parent.snapshot(), serial.snapshot()
        assert merged.counters.get("work.items", 0.0) == pytest.approx(
            expected.counters.get("work.items", 0.0))
        got = merged.histograms.get("work.seconds")
        want = expected.histograms.get("work.seconds")
        if want is None:
            assert got is None or got.count == 0
        else:
            assert got.counts == want.counts
            assert got.count == want.count
            assert got.total == pytest.approx(want.total)

    @given(observations, observations)
    def test_merge_order_independent_for_histograms(self, first, second):
        ab = MetricsRegistry()
        ab.merge(_shard_registry([], first).snapshot())
        ab.merge(_shard_registry([], second).snapshot())
        ba = MetricsRegistry()
        ba.merge(_shard_registry([], second).snapshot())
        ba.merge(_shard_registry([], first).snapshot())
        a_data = ab.snapshot().histograms.get("work.seconds")
        b_data = ba.snapshot().histograms.get("work.seconds")
        if a_data is None or b_data is None:
            assert (a_data is None or a_data.count == 0) and \
                (b_data is None or b_data.count == 0)
        else:
            assert a_data.counts == b_data.counts
            assert a_data.total == pytest.approx(b_data.total)

    def test_gauges_last_merge_wins(self):
        parent = MetricsRegistry()
        parent.gauge("level").set(1.0)
        shard = MetricsRegistry()
        shard.gauge("level").set(9.0)
        parent.merge(shard.snapshot())
        assert parent.snapshot().gauges["level"] == 9.0

    def test_default_buckets_cover_latency_range(self):
        # sanity on the default layout the timing histograms use
        assert DEFAULT_TIME_BUCKETS == tuple(sorted(DEFAULT_TIME_BUCKETS))
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 10.0
