"""Obs-test isolation: the switch and registries are process globals."""

import pytest

from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Every test starts disabled with empty state, and leaves it so."""
    obs.reset()
    yield
    obs.reset()
