"""The process-wide switch: disabled no-ops, enable/reset semantics."""

from __future__ import annotations

from repro.obs import runtime as obs
from repro.obs.spans import NOOP_SPAN


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_facade_calls_are_noops(self):
        obs.count("c")
        obs.observe("h", 0.5)
        obs.gauge_set("g", 1.0)
        obs.set_gauges({"a": 1.0}, prefix="p.")
        with obs.timed("t"):
            pass
        with obs.span("s"):
            pass
        snap = obs.snapshot()
        assert snap.empty
        assert obs.tracer().roots() == []

    def test_span_returns_shared_noop(self):
        assert obs.span("anything") is NOOP_SPAN
        assert obs.timed("anything") is NOOP_SPAN


class TestEnabled:
    def test_count_observe_gauge(self):
        obs.enable(fresh=True)
        obs.count("c", 2.0)
        obs.gauge_set("g", 5.0)
        obs.observe("h", 0.01)
        snap = obs.snapshot()
        assert snap.counters["c"] == 2.0
        assert snap.gauges["g"] == 5.0
        assert snap.histograms["h"].count == 1

    def test_timed_records_span_and_histogram(self):
        ticks = iter(float(i) for i in range(100))
        obs.enable(clock=lambda: next(ticks))
        with obs.timed("op"):
            pass
        snap = obs.snapshot()
        assert snap.histograms["op.seconds"].count == 1
        # clock ticks: timed start=0, span start=1, span end=2, timed end=3
        assert snap.histograms["op.seconds"].total == 3.0
        assert [root.name for root in obs.tracer().roots()] == ["op"]

    def test_timed_observes_even_when_body_raises(self):
        obs.enable(fresh=True)
        try:
            with obs.timed("op"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert obs.snapshot().histograms["op.seconds"].count == 1

    def test_disable_keeps_state(self):
        obs.enable(fresh=True)
        obs.count("c")
        obs.disable()
        obs.count("c")  # no-op
        assert obs.snapshot().counters["c"] == 1.0

    def test_enable_fresh_discards_state(self):
        obs.enable(fresh=True)
        obs.count("c")
        obs.enable(fresh=True)
        assert obs.snapshot().empty

    def test_enable_without_fresh_keeps_state(self):
        obs.enable(fresh=True)
        obs.count("c")
        obs.disable()
        obs.enable()
        obs.count("c")
        assert obs.snapshot().counters["c"] == 2.0

    def test_reset_disables_and_clears(self):
        obs.enable(fresh=True)
        obs.count("c")
        obs.reset()
        assert not obs.enabled()
        assert obs.snapshot().empty
