"""Span-tree shape: nesting, exception unwind, the cap, rendering."""

from __future__ import annotations

import pytest

from repro.obs.spans import NOOP_SPAN, Tracer


class FakeClock:
    """Deterministic tick source: each read advances by `step`."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        tick = self.now
        self.now += self.step
        return tick


class TestNesting:
    def test_children_nest_under_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        roots = tracer.roots()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == \
            ["inner_a", "inner_b"]

    def test_sequential_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots()] == ["first", "second"]

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):      # start=0
            with tracer.span("inner"):  # start=1, end=2
                pass
        outer, = tracer.roots()
        inner, = outer.children
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)  # end=3


class TestExceptionSafety:
    def test_span_closes_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        outer, = tracer.roots()
        inner, = outer.children
        assert inner.end is not None
        assert outer.end is not None

    def test_tree_reusable_after_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("failed"):
                raise ValueError
        with tracer.span("next"):
            pass
        # `next` is a fresh root, not a child of the failed span
        assert [root.name for root in tracer.roots()] == ["failed", "next"]


class TestCap:
    def test_spans_past_cap_dropped_and_counted(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        for name in ("a", "b", "c", "d"):
            with tracer.span(name):
                pass
        assert [root.name for root in tracer.roots()] == ["a", "b"]
        assert tracer.dropped == 2
        assert tracer.to_json()["dropped"] == 2

    def test_clear_resets_cap(self):
        tracer = Tracer(clock=FakeClock(), max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        with tracer.span("c"):
            pass
        assert [root.name for root in tracer.roots()] == ["c"]
        assert tracer.dropped == 0


class TestRendering:
    def test_to_json_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        payload = tracer.to_json()
        outer = payload["spans"][0]
        assert outer["name"] == "outer"
        assert outer["children"][0]["name"] == "inner"
        assert outer["duration"] >= outer["children"][0]["duration"]

    def test_render_text_indents_children(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        lines = tracer.render_text().splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")


class TestNoopSpan:
    def test_reentrant_and_stateless(self):
        with NOOP_SPAN as first:
            with NOOP_SPAN as second:
                assert first is second is NOOP_SPAN

    def test_swallows_nothing(self):
        with pytest.raises(KeyError):
            with NOOP_SPAN:
                raise KeyError
