"""Instrumentation wired through the real system.

The contracts under test: the service and pipeline report what they
actually did; a parallel run's merged worker metrics read the same as
the serial run's; the `repro obs` CLI exports in every format; and the
bench harness embeds its run's snapshot in the report meta.
"""

from __future__ import annotations

import json

import pytest

from repro.core.service import ServiceConfig, TipsyService
from repro.obs import runtime as obs
from repro.obs.cli import main as obs_main
from repro.perf.parallel import ParallelPipelineRunner

HOURS = 12


@pytest.fixture()
def ingested_service(small_scenario):
    obs.enable(fresh=True)
    service = TipsyService(small_scenario.wan,
                           ServiceConfig(training_window_days=2))
    for cols in small_scenario.stream(0, 3 * 24):
        service.ingest_hour(cols.hour,
                            small_scenario.agg_records_for(cols))
    return service


class TestServiceCounters:
    def test_ingest_and_retrain_reported(self, ingested_service):
        snap = obs.snapshot()
        assert snap.counters["service.ingest.hours"] == 3 * 24
        assert snap.counters["service.ingest.records"] > 0
        # three day boundaries crossed -> incremental retrains happened
        assert snap.counters["service.retrain.incremental"] >= 2
        assert snap.histograms["service.retrain.seconds"].count >= 2

    def test_serving_counters(self, small_scenario, ingested_service):
        contexts = small_scenario.flow_contexts
        ingested_service.predict_batch(contexts)
        ingested_service.what_if([(contexts[0], 100.0)], frozenset())
        snap = obs.snapshot()
        assert snap.counters["service.predict.batches"] == 1
        assert snap.counters["service.predict.flows"] == len(contexts)
        assert snap.counters["service.what_if.calls"] == 1
        assert snap.counters["service.what_if.flows"] == 1
        assert snap.histograms["service.predict_batch.seconds"].count == 1

    def test_export_gauges_publishes_cache_stats(self, ingested_service):
        ingested_service.export_gauges()
        gauges = obs.snapshot().gauges
        for key, value in ingested_service.cache_stats().items():
            assert gauges["service." + key] == float(value)
        assert gauges["service.retrain_count"] >= 2

    def test_untouched_when_disabled(self, small_scenario):
        obs.reset()
        service = TipsyService(small_scenario.wan,
                               ServiceConfig(training_window_days=2))
        for cols in small_scenario.stream(0, 24):
            service.ingest_hour(cols.hour,
                                small_scenario.agg_records_for(cols))
        assert obs.snapshot().empty


class TestParallelMerge:
    def test_worker_metrics_merge_equals_serial(self, small_scenario):
        obs.enable(fresh=True)
        with ParallelPipelineRunner(scenario=small_scenario, n_workers=2,
                                    shard_hours=6) as runner:
            list(runner.iter_hour_columns(0, HOURS, parallel=True))
        parallel_snap = obs.snapshot()

        obs.enable(fresh=True)
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=1) as runner:
            list(runner.iter_hour_columns(0, HOURS, parallel=False))
        serial_snap = obs.snapshot()

        for name in ("pipeline.aggregate.hours",
                     "pipeline.aggregate.records_in",
                     "pipeline.aggregate.records_out"):
            assert parallel_snap.counters.get(name) == \
                serial_snap.counters.get(name), name
        assert parallel_snap.counters["pipeline.aggregate.hours"] == HOURS
        assert parallel_snap.counters["pipeline.shards_dispatched"] >= 2
        # per-hour timing histograms merged back from the workers
        assert parallel_snap.histograms[
            "pipeline.aggregate_hour.seconds"].count == HOURS

    def test_parallel_results_unchanged_by_instrumentation(
            self, small_scenario):
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=1) as runner:
            plain = list(runner.iter_hours(0, 6, parallel=False))
        obs.enable(fresh=True)
        with ParallelPipelineRunner(scenario=small_scenario,
                                    n_workers=1) as runner:
            instrumented = list(runner.iter_hours(0, 6, parallel=False))
        assert plain == instrumented


class TestObsCli:
    def test_all_formats_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        out_path = tmp_path / "snap.json"
        rc = obs_main(["--days", "2", "--format", "json",
                       "-o", str(out_path), "--trace-out", str(trace_path)])
        assert rc == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["service.ingest.hours"] == 48
        trace = json.loads(trace_path.read_text())
        names = [span["name"] for span in trace["spans"]]
        assert "obs.example_run" in names

    def test_prometheus_to_stdout(self, capsys):
        rc = obs_main(["--days", "2", "--format", "prometheus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_ingest_hours counter" in out

    def test_rejects_too_few_days(self):
        with pytest.raises(SystemExit):
            obs_main(["--days", "1"])


class TestBenchMeta:
    def test_report_embeds_obs_snapshot(self, tmp_path):
        from repro.perf.bench import run_bench
        from repro.perf.regression import load_report

        rc = run_bench(profile="smoke", seed=1, out_dir=str(tmp_path),
                       compare=False, save=True, rounds=1, suite="serving")
        assert rc == 0
        report_path, = tmp_path.glob("BENCH_*.smoke.json")
        report = load_report(report_path)
        snapshot = json.loads(report.meta["obs"])
        assert snapshot["counters"]["service.predict.flows"] > 0
        assert "service.retrain.seconds" in snapshot["histograms"]
