"""Shared fixtures.

The scenario fixtures are session-scoped: building a scenario and
streaming weeks of telemetry is the expensive part of the suite, and the
objects are treated as read-only by tests (models and accumulators are
cheap to derive per-test).
"""

from __future__ import annotations

import pytest

from repro.experiments import EvaluationRunner, Scenario, ScenarioParams, WindowSpec


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    """A small but fully-featured world shared by read-only tests."""
    return Scenario(ScenarioParams.small(seed=7, horizon_days=14))


@pytest.fixture(scope="session")
def small_result(small_scenario):
    """One full evaluation over the small scenario (10 train / 4 test days)."""
    runner = EvaluationRunner(small_scenario)
    return runner.run(WindowSpec(train_start_day=0, train_days=10,
                                 test_days=4))


@pytest.fixture(scope="session")
def trained_counts(small_scenario):
    """Training counts over the first 10 days of the small scenario."""
    runner = EvaluationRunner(small_scenario)
    acc = runner.collect_window(0, 10 * 24)
    return runner.counts_from(acc)
