"""Equivalence gate for incremental rolling-window retraining.

The service maintains its model suite by adding the day that entered the
window and exactly subtracting the day that evicted.  This test drives a
simulated multi-week stream — long enough for the window to evict many
days — and proves at several checkpoints that the incrementally
maintained models are *bit-identical* (same counts, same rankings, same
scores) to models rebuilt from scratch over the same window.

Byte values are deliberately non-integral: with plain float arithmetic,
``(a + b) - a != b`` in general, so this gate fails for any
approximately-subtractive scheme and passes only for exact accumulation.
"""

import numpy as np
import pytest

from repro.core.service import ServiceConfig, TipsyService
from repro.pipeline import AggRecord, FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)

BASE_MODELS = ("Hist_AP", "Hist_AL", "Hist_A")
N_DAYS = 30
WINDOW_DAYS = 7
CHECKPOINT_DAYS = (1, 5, 8, 13, 21, 29)   # filling, full, long-after


@pytest.fixture(scope="module")
def wan():
    metros = MetroCatalog()
    links = [PeeringLink(i, 100 + i % 3, m, f"{m}-er1", 100.0)
             for i, m in enumerate(("iad", "nyc", "atl", "sea", "lax"))]
    return CloudWAN(8075, links, [Region("r", "iad")],
                    [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)


def synthetic_hours(n_days, seed=20260806):
    """Per-hour AggRecord batches with awkward float byte counts."""
    rng = np.random.default_rng(seed)
    hours = []
    for hour in range(n_days * 24):
        n = int(rng.integers(5, 30))
        links = rng.integers(0, 5, size=n)
        asns = rng.integers(1, 6, size=n)
        prefixes = rng.integers(1, 40, size=n)
        locs = rng.integers(0, 4, size=n)
        regions = rng.integers(0, 3, size=n)
        services = rng.integers(0, 2, size=n)
        # mix tiny and huge magnitudes so naive subtraction visibly drifts
        bytes_ = np.exp(rng.uniform(-3.0, 21.0, size=n))
        hours.append([
            AggRecord(hour, int(links[i]), int(asns[i]), int(prefixes[i]),
                      int(locs[i]), int(regions[i]), int(services[i]),
                      float(bytes_[i]))
            for i in range(n)
        ])
    return hours


def assert_suites_identical(incremental, reference):
    assert incremental.trained_days == reference.trained_days
    for name in BASE_MODELS:
        left = incremental.model(name)
        right = reference.model(name)
        # identical (tuple, link) -> bytes maps, bit for bit
        assert left._counts == right._counts, name
        # identical rankings: same order, same link ids, same scores
        assert left.rankings() == right.rankings(), name


class TestIncrementalEquivalence:
    def test_bit_identical_over_multi_week_window(self, wan):
        hours = synthetic_hours(N_DAYS)
        config = ServiceConfig(training_window_days=WINDOW_DAYS)
        incremental = TipsyService(wan, config)
        reference = TipsyService(wan, config)
        checkpoints = 0
        for hour, records in enumerate(hours):
            incremental.ingest_hour(hour, records)
            reference.ingest_hour(hour, records)
            day, hour_of_day = divmod(hour, 24)
            if day in CHECKPOINT_DAYS and hour_of_day == 23:
                # the reference is rebuilt from scratch; the incremental
                # service has only ever applied day deltas
                reference.retrain(strict_rebuild=True)
                assert_suites_identical(incremental, reference)
                checkpoints += 1
        assert checkpoints == len(CHECKPOINT_DAYS)
        # the window really did roll: early days are long gone
        assert min(incremental.trained_days) == N_DAYS - 1 - WINDOW_DAYS

    def test_incremental_continues_after_strict_rebuild(self, wan):
        hours = synthetic_hours(12, seed=7)
        config = ServiceConfig(training_window_days=4)
        service = TipsyService(wan, config)
        reference = TipsyService(wan, config)
        for hour, records in enumerate(hours):
            service.ingest_hour(hour, records)
            reference.ingest_hour(hour, records)
            if hour == 6 * 24:
                # escape hatch mid-stream on one service only
                service.retrain(strict_rebuild=True)
        reference.retrain(strict_rebuild=True)
        assert_suites_identical(service, reference)

    def test_naive_float_subtraction_would_fail(self):
        """Documents why exact partials are needed at all: the same
        add-then-subtract walk with plain floats does not return to the
        starting value."""
        rng = np.random.default_rng(3)
        values = np.exp(rng.uniform(-3.0, 21.0, size=200)).tolist()
        total = 0.0
        for value in values:
            total += value
        kept = values[0]
        for value in values[1:]:
            total -= value
        assert total != kept
