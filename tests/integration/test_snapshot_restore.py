"""Snapshot/restore through the real service: bit-identical resumption.

The restart guarantee under test (docs/storage.md): restore a
mid-window snapshot into a fresh process and the service is
*indistinguishable* from one that never stopped — same predictions,
same what-if answers, and, after further ingest across retrains and
window evictions, still the same.  Damage downgrades, never corrupts:
a lost model segment rebuilds from the day segments; a lost day
shrinks the window and says so in the restore report.
"""

from __future__ import annotations

import pytest

from repro.core.features import FEATURES_A, FEATURES_AL, FEATURES_AP
from repro.core.persistence import train_models_from_store
from repro.core.service import (
    ServiceConfig,
    SnapshotError,
    TipsyService,
)
from repro.experiments.scenario import Scenario, ScenarioParams
from repro.store import SegmentStore

WINDOW_DAYS = 5
SNAP_DAYS = 7
TOTAL_DAYS = 10


@pytest.fixture(scope="module")
def world():
    scenario = Scenario(ScenarioParams.small(seed=23,
                                             horizon_days=TOTAL_DAYS))
    hours = [(cols.hour, scenario.agg_records_for(cols))
             for cols in scenario.stream(0, TOTAL_DAYS * 24)]
    return scenario, hours


def _service_fed_to(world, n_hours):
    scenario, hours = world
    service = TipsyService(
        scenario.wan, ServiceConfig(training_window_days=WINDOW_DAYS))
    for hour, records in hours[:n_hours]:
        service.ingest_hour(hour, records)
    return service


@pytest.fixture()
def snapshot_dir(world, tmp_path):
    service = _service_fed_to(world, SNAP_DAYS * 24)
    service.snapshot(tmp_path / "snap")
    return tmp_path / "snap"


def _predictions(service, scenario):
    contexts = scenario.flow_contexts
    top = service.predict(contexts[0], k=1)
    withdrawn = frozenset({top[0].link_id}) if top else frozenset()
    return (service.predict_batch(contexts),
            service.what_if([(c, 1000.0) for c in contexts[:64]],
                            withdrawn))


class TestBitIdenticalRestore:
    def test_restore_matches_uninterrupted_service(self, world,
                                                   snapshot_dir):
        scenario, _hours = world
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        assert restored.restore_report is not None
        assert restored.restore_report.clean
        assert _predictions(restored, scenario) == \
            _predictions(reference, scenario)

    def test_internal_state_round_trips(self, world, snapshot_dir):
        scenario, _hours = world
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        assert restored.trained_days == reference.trained_days
        assert restored.retrain_count == reference.retrain_count
        assert sorted(restored._days) == sorted(reference._days)
        for day, counts in reference._days.items():
            # dict equality is order-insensitive; the bit-identical
            # guarantee also needs iteration order, checked explicitly
            restored_counts = restored._days[day].counts
            assert list(restored_counts.items()) == \
                list(counts.counts.items())

    def test_continued_ingest_stays_identical(self, world, snapshot_dir):
        """The restored window keeps rolling exactly: further days bring
        retrains and evictions, and every prediction still matches."""
        scenario, hours = world
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        for hour, records in hours[SNAP_DAYS * 24:]:
            reference.ingest_hour(hour, records)
            restored.ingest_hour(hour, records)
        assert restored.retrain_count == reference.retrain_count
        assert restored.trained_days == reference.trained_days
        assert _predictions(restored, scenario) == \
            _predictions(reference, scenario)

    def test_snapshot_then_restore_then_snapshot_is_stable(
            self, world, snapshot_dir, tmp_path):
        scenario, _hours = world
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        again = restored.snapshot(tmp_path / "snap2")
        first = SegmentStore(snapshot_dir)
        for info in first.segments():
            assert again.info(info.name) is not None
            assert again.info(info.name).sha256 == info.sha256


class TestDegradedRestore:
    def test_corrupt_model_segment_rebuilds(self, world, snapshot_dir):
        scenario, _hours = world
        path = snapshot_dir / "model-AL.npz"
        path.write_bytes(path.read_bytes()[:100])
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        report = restored.restore_report
        assert report.models_rebuilt
        assert report.days_lost == ()
        # a rebuild from intact day segments is still exact
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        assert _predictions(restored, scenario) == \
            _predictions(reference, scenario)

    def test_lost_day_is_reported_and_window_shrinks(self, world,
                                                     snapshot_dir):
        scenario, _hours = world
        lost_day = min(TipsyService.restore(snapshot_dir,
                                            scenario.wan).trained_days)
        (snapshot_dir / f"day-{lost_day:06d}.npz").unlink()
        restored = TipsyService.restore(snapshot_dir, scenario.wan)
        report = restored.restore_report
        assert report.days_lost == (lost_day,)
        assert lost_day not in restored.trained_days
        assert report.models_rebuilt  # resumption needs every day
        assert not report.clean

    def test_rebuild_models_flag_forces_retrain(self, world,
                                                snapshot_dir):
        scenario, _hours = world
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        restored = TipsyService.restore(snapshot_dir, scenario.wan,
                                        rebuild_models=True)
        assert restored.restore_report.models_rebuilt
        assert _predictions(restored, scenario) == \
            _predictions(reference, scenario)

    def test_empty_directory_raises_snapshot_error(self, world,
                                                   tmp_path):
        scenario, _hours = world
        with pytest.raises(SnapshotError):
            TipsyService.restore(tmp_path / "nothing", scenario.wan)


class TestOutOfCoreTraining:
    def test_matches_in_memory_models(self, world, snapshot_dir):
        """Streaming day segments one at a time reproduces the served
        base models exactly (same counts, same rankings)."""
        scenario, _hours = world
        reference = _service_fed_to(world, SNAP_DAYS * 24)
        models, used, lost = train_models_from_store(
            SegmentStore(snapshot_dir),
            (FEATURES_AP, FEATURES_AL, FEATURES_A),
            days=reference.trained_days)
        assert lost == ()
        assert used == reference.trained_days
        for model in models:
            served = reference._models[f"Hist_{model.feature_set.name}"]
            assert model._counts == served._counts
            assert model.rankings() == served.rankings()

    def test_skips_corrupt_days(self, world, snapshot_dir):
        (snapshot_dir / "day-000002.npz").write_bytes(b"junk")
        models, used, lost = train_models_from_store(
            SegmentStore(snapshot_dir), (FEATURES_AP,))
        assert lost == (2,)
        assert 2 not in used
        assert models[0].size() > 0
