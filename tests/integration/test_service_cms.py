"""Integration: the TipsyService plugged into the CMS, end to end."""

import pytest

from repro.bgp import AdvertisementState
from repro.cms import CMSConfig, CongestionMitigationSystem
from repro.core import ServiceConfig, TipsyService


class TestServiceDrivesCms:
    def test_service_as_cms_predictor(self, small_scenario):
        """The service satisfies the CMS's predictor interface: the
        whole §4 loop — ingest, retrain daily, answer safety queries —
        composes without glue code."""
        sc = small_scenario
        service = TipsyService(sc.wan, ServiceConfig(training_window_days=5))
        cms = CongestionMitigationSystem(sc.wan, CMSConfig(),
                                         predictor=service)
        state = AdvertisementState(sc.wan)
        acted = False
        for cols in sc.stream(0, 7 * 24, state=state):
            service.ingest_hour(cols.hour, sc.agg_records_for(cols))
            if not service.ready:
                continue
            entries = sc.traffic_entries_for(cols)
            actions = cms.handle_sample(cols.hour, state, entries)
            acted = acted or bool(actions)
        # the service retrained as days rolled over
        assert service.retrain_count >= 5
        # and the CMS ran its loop with service predictions (whether it
        # acted depends on utilization; either way no exceptions, and
        # every action it DID take is of a known kind)
        for action in cms.actions:
            assert action.kind in {"withdraw", "withdraw-coordinated",
                                   "skip-unsafe", "reannounce"}

    def test_service_what_if_matches_cms_expectation(self, small_scenario):
        """what_if() answers the exact question CMS's spill check asks."""
        sc = small_scenario
        service = TipsyService(sc.wan, ServiceConfig(training_window_days=5))
        for cols in sc.stream(0, 3 * 24):
            service.ingest_hour(cols.hour, sc.agg_records_for(cols))
        service.ingest_hour(3 * 24, [])  # roll the day: train on days 0-2
        assert service.ready

        cols = next(iter(sc.stream(3 * 24, 3 * 24 + 1)))
        entries = sc.traffic_entries_for(cols)
        # pick the busiest link and ask where its flows would go
        by_link = {}
        for entry in entries:
            by_link.setdefault(entry.link_id, []).append(entry)
        hot = max(by_link, key=lambda l: sum(e.bytes for e in by_link[l]))
        flows = [(e.context, e.bytes) for e in by_link[hot]]
        spill = service.what_if(flows, withdrawn=frozenset({hot}))
        total = sum(b for _c, b in flows)
        assert sum(spill.values()) == pytest.approx(total)
        assert hot not in spill
