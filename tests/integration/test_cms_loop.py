"""Integration test: the CMS closed loop over a live scenario stream."""

import pytest

from repro.bgp import AdvertisementState
from repro.cms import CMSConfig, CongestionMitigationSystem
from repro.experiments import EvaluationRunner, Scenario, ScenarioParams


@pytest.fixture(scope="module")
def scenario():
    return Scenario(ScenarioParams.small(seed=11, horizon_days=10))


class TestClosedLoop:
    def _run_cms(self, scenario, predictor, hours=(0, 72)):
        cms = CongestionMitigationSystem(
            scenario.wan, CMSConfig(coordinated=predictor is not None),
            predictor=predictor)
        state = AdvertisementState(scenario.wan)
        congested = 0
        for cols in scenario.stream(hours[0], hours[1], state=state):
            entries = scenario.traffic_entries_for(cols)
            link_bytes = {}
            for entry in entries:
                link_bytes[entry.link_id] = (
                    link_bytes.get(entry.link_id, 0.0) + entry.bytes)
            for link_id, bytes_ in link_bytes.items():
                if cms.monitor.utilization(link_id, bytes_) > 0.85:
                    congested += 1
            cms.handle_sample(cols.hour, state, entries)
        return cms, congested

    def test_blind_cms_runs_and_withdraws(self, scenario):
        cms, _ = self._run_cms(scenario, predictor=None)
        kinds = {a.kind for a in cms.actions}
        # the scaled scenario runs some links hot: CMS must have acted
        assert "withdraw" in kinds

    def test_withdrawals_take_effect_in_stream(self, scenario):
        """CMS mutations of the shared state must steer the very next
        hours of the stream (closed loop, not open loop)."""
        cms, _ = self._run_cms(scenario, predictor=None)
        withdraws = [a for a in cms.actions if a.kind == "withdraw"]
        assert withdraws
        # after a withdrawal, no subsequent withdrawal repeats the same
        # (prefix, link) while it is still withdrawn
        active = set()
        for action in cms.actions:
            key = (action.dest_prefix_id, action.link_id)
            if action.kind == "withdraw":
                assert key not in active
                active.add(key)
            elif action.kind == "reannounce":
                active.discard(key)

    def test_tipsy_guided_loop(self, scenario):
        runner = EvaluationRunner(scenario)
        train = runner.counts_from(runner.collect_window(0, 72))
        models = {m.name: m for m in runner.build_models(train)}
        cms, _ = self._run_cms(scenario, predictor=models["Hist_AL+G"],
                               hours=(72, 144))
        # guided CMS acts (withdraw / coordinated / explicit skip)
        assert cms.actions
        for action in cms.actions:
            assert action.kind in {"withdraw", "withdraw-coordinated",
                                   "skip-unsafe", "reannounce"}
