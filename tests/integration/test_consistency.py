"""Cross-component consistency checks.

The same physical fact is computed through different paths in different
modules; these tests pin them to each other.
"""

import numpy as np
import pytest


class TestDistanceConsistency:
    def test_bmp_and_simulator_agree_on_as_distance(self, small_scenario):
        """BMP inference climbs provider chains from the origin; the
        simulator's routing table BFS descends customer cones from the
        peers.  Both are shortest valley-free distances and must agree
        wherever both are defined."""
        sc = small_scenario
        for asn in sc.graph.asns:
            bmp_d = sc.bmp.as_distance(asn)
            sim_d = sc.simulator.as_distance(asn)
            assert bmp_d == sim_d, f"AS{asn}: BMP {bmp_d} vs sim {sim_d}"

    def test_direct_peers_distance_one(self, small_scenario):
        sc = small_scenario
        for peer in sc.wan.peer_asns:
            if peer in sc.graph:
                assert sc.simulator.as_distance(peer) == 1


class TestVolumeConservation:
    def test_true_bytes_conserve_generated_volumes(self, small_scenario):
        """Everything generated lands somewhere (or is counted lost):
        routed true bytes never exceed generated volumes, and routed
        fractions per flow sum to 1 when a route exists."""
        sc = small_scenario
        cols = next(iter(sc.stream(3, 4)))
        vols = sc.traffic.volumes_for_hour(3)
        routed = np.zeros(len(vols))
        np.add.at(routed, cols.flow_rows, cols.true_bytes)
        # per-flow routed bytes equal the generated volume (shares sum
        # to 1) or zero (no route / inactive)
        for i, (generated, got) in enumerate(zip(vols, routed)):
            if got > 0:
                assert got == pytest.approx(generated, rel=1e-9)

    def test_most_traffic_is_routable(self, small_scenario):
        sc = small_scenario
        cols = next(iter(sc.stream(3, 4)))
        vols = sc.traffic.volumes_for_hour(3)
        assert cols.true_bytes.sum() > 0.95 * vols.sum()


class TestStateMutationMidStream:
    def test_cms_style_mutation_changes_next_hour(self, small_scenario):
        """Mutating the shared state between iterations (what the CMS
        does) must affect the very next hour's routing."""
        from repro.bgp import AdvertisementState

        sc = small_scenario
        state = AdvertisementState(sc.wan)
        stream = sc.stream(0, 3, state=state, apply_outages=False)
        first = next(stream)
        link_totals = np.bincount(first.link_ids, weights=first.true_bytes,
                                  minlength=len(sc.wan.links))
        hot_link = int(np.argmax(link_totals))
        for prefix in sc.wan.dest_prefixes:
            state.withdraw(prefix.prefix_id, hot_link)
        second = next(stream)
        on_hot = second.true_bytes[second.link_ids == hot_link].sum()
        assert on_hot == 0.0
