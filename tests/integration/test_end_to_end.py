"""Integration tests across the whole stack.

These exercise the record-level (pipeline-faithful) path against the
columnar fast path, the full evaluation, and the paper's qualitative
claims on the shared small scenario.
"""

import pytest

from repro.core import CountsAccumulator
from repro.pipeline import HourlyAggregator, LinkByteTracker, OutageInference
from repro.telemetry import MetadataStore


class TestRecordPathMatchesColumnarPath:
    def test_agg_records_match_fast_path(self, small_scenario):
        """The faithful IPFIX -> aggregator path and the columnar fast
        path must agree byte-for-byte."""
        sc = small_scenario
        aggregator = HourlyAggregator(MetadataStore(sc.wan, sc.geoip))
        cols = next(iter(sc.stream(5, 6)))
        ipfix = sc.ipfix_records_for(cols)
        via_pipeline = aggregator.aggregate_hour(5, ipfix)
        via_fast = sc.agg_records_for(cols)

        def total(records):
            return sum(r.bytes for r in records)

        assert total(via_pipeline) == pytest.approx(total(via_fast))
        # keyed totals agree up to encoder code assignment: compare by
        # (link, src_prefix) which is encoder-independent
        def keyed(records):
            out = {}
            for r in records:
                key = (r.link_id, r.src_prefix)
                out[key] = out.get(key, 0.0) + r.bytes
            return out

        left, right = keyed(via_pipeline), keyed(via_fast)
        assert set(left) == set(right)
        for key in left:
            assert left[key] == pytest.approx(right[key])

    def test_counts_accumulator_consumes_agg_records(self, small_scenario):
        sc = small_scenario
        acc = CountsAccumulator()
        for cols in sc.stream(0, 12):
            acc.consume_hour(cols.hour, sc.agg_records_for(cols))
        assert len(acc) > 50
        assert acc.total_bytes() > 0


class TestOutageInferenceOnRealStream:
    def test_scheduled_outages_are_inferred(self, small_scenario):
        sc = small_scenario
        n_hours = 7 * 24
        tracker = LinkByteTracker(sc.wan.link_ids, n_hours)
        for cols in sc.stream(0, n_hours):
            tracker.add_bulk(cols.hour, cols.link_ids, cols.sampled_bytes)
        inference = OutageInference(sc.wan.link_ids, tracker.matrix)
        # every scheduled outage on a traffic-carrying link shows up
        carrying = {
            sc.wan.link_ids[i]
            for i in range(len(sc.wan.link_ids))
            if tracker.matrix[i].sum() > 0
        }
        missed = []
        for outage in sc.outage_schedule:
            if outage.end_hour > n_hours or outage.link_id not in carrying:
                continue
            mid = (outage.start_hour + outage.end_hour) // 2
            if outage.link_id not in inference.down_links_at(mid):
                missed.append(outage)
        assert not missed


class TestPaperQualitativeClaims:
    def test_ensemble_beats_components_overall(self, small_result):
        """§5.2: the AP-led ensemble is the best overall model."""
        rows = small_result.overall.rows
        assert rows["Hist_AP/AL/A"][3] >= rows["Hist_AP"][3] - 1e-9
        assert rows["Hist_AP/AL/A"][3] >= rows["Hist_A"][3]

    def test_geo_completion_never_hurts(self, small_result):
        for block in (small_result.overall, small_result.outages_all,
                      small_result.outages_unseen):
            if not block.rows or block.total_bytes == 0:
                continue
            for k in (1, 2, 3):
                assert (block.rows["Hist_AL+G"][k]
                        >= block.rows["Hist_AL"][k] - 1e-9)

    def test_geo_helps_on_unseen_outages(self, small_result):
        """§5.3.2: 'geographic heuristics are effective for unseen
        outages' — the paper's headline mechanism."""
        block = small_result.outages_unseen
        if block.total_bytes == 0:
            pytest.skip("no unseen-outage bytes in this window")
        assert block.rows["Hist_AL+G"][3] >= block.rows["Hist_AL"][3]

    def test_models_below_oracle_on_outages(self, small_result):
        block = small_result.outages_all
        if block.total_bytes == 0:
            pytest.skip("no outage bytes")
        assert block.rows["Hist_AP"][3] <= block.rows["Oracle_AP"][3] + 1e-9

    def test_training_tuples_scale_with_features(self, trained_counts):
        from repro.core import (FEATURES_A, FEATURES_AL, FEATURES_AP,
                                HistoricalModel)
        a = HistoricalModel(FEATURES_A)
        ap = HistoricalModel(FEATURES_AP)
        al = HistoricalModel(FEATURES_AL)
        trained_counts.fit([a, ap, al])
        # Table 1's ordering: |A| <= |AL| <= |AP|
        assert a.size() <= al.size() <= ap.size()
