"""Shard placement: deterministic, total, and order-preserving."""

import pytest

from repro.serve.sharding import (SHARD_HASH_SEED, shard_of, split_indices,
                                  split_records)
from repro.util.hashing import mix64


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for asn in range(1, 2000, 37):
            shard = shard_of(asn, 8)
            assert shard == shard_of(asn, 8)
            assert 0 <= shard < 8

    def test_matches_published_hash(self):
        # the placement function is checkpoint format: pin it to mix64
        # with the published seed so it cannot drift silently
        assert shard_of(64500, 16) == mix64(
            64500, seed=SHARD_HASH_SEED) % 16

    def test_single_shard_owns_everything(self):
        assert all(shard_of(asn, 1) == 0 for asn in (1, 7, 64500))

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            shard_of(64500, 0)

    def test_spreads_across_shards(self):
        owners = {shard_of(asn, 4) for asn in range(1, 500)}
        assert owners == {0, 1, 2, 3}


class TestSplitRecords:
    def test_every_shard_gets_a_list(self, serve_world):
        shards = split_records(serve_world.hourly[12], 5)
        assert len(shards) == 5  # empty lists included: hours align

    def test_partition_is_total_and_order_preserving(self, serve_world):
        records = serve_world.hourly[12]
        shards = split_records(records, 4)
        assert sum(len(s) for s in shards) == len(records)
        for shard_id, shard_records in enumerate(shards):
            assert all(shard_of(r.src_asn, 4) == shard_id
                       for r in shard_records)
            positions = [records.index(r) for r in shard_records]
            assert positions == sorted(positions)


class TestSplitIndices:
    def test_round_trips_the_batch(self, serve_world):
        contexts = serve_world.contexts[:200]
        indices = split_indices(contexts, 4)
        scattered = sorted(i for shard in indices for i in shard)
        assert scattered == list(range(len(contexts)))
        for shard_id, positions in enumerate(indices):
            assert positions == sorted(positions)
            assert all(shard_of(contexts[i].src_asn, 4) == shard_id
                       for i in positions)

    def test_record_and_context_placement_agree(self, serve_world):
        # a flow's training records and its queries land on the same
        # shard — the heart of the equivalence argument
        context_shards = {c.src_asn: shard_of(c.src_asn, 4)
                          for c in serve_world.contexts}
        for record in serve_world.hourly[12]:
            if record.src_asn in context_shards:
                assert (shard_of(record.src_asn, 4)
                        == context_shards[record.src_asn])

    def test_single_shard_degenerates_to_unsharded(self, serve_world):
        contexts = serve_world.contexts[:50]
        assert split_indices(contexts, 1) == [list(range(len(contexts)))]
