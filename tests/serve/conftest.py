"""Shared serving-daemon fixtures.

One session-scoped world bundles the expensive parts: a small scenario,
its pre-expanded hourly telemetry, and an uninterrupted single-process
:class:`TipsyService` fed the same stream — the bit-identity reference
every daemon test compares against.  Tests treat all of it as
read-only and build their own (cheap) shards and daemons.
"""

from __future__ import annotations

from typing import List, NamedTuple

import pytest

from repro.core.service import ServiceConfig, TipsyService
from repro.experiments import Scenario, ScenarioParams
from repro.obs import runtime as obs
from repro.pipeline.records import AggRecord, FlowContext

#: 4 streamed days — enough for several day-boundary retrains and a
#: window eviction — over a 3-day rolling window
HOURS = 96
WINDOW = 3


class ServeWorld(NamedTuple):
    scenario: Scenario
    hourly: List[List[AggRecord]]
    reference: TipsyService
    contexts: List[FlowContext]
    config: ServiceConfig


@pytest.fixture(autouse=True)
def _obs_isolation():
    """The obs switch is a process global; leave it as found."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="session", params=["inline", "process"])
def trained_daemon(request, serve_world):
    """A fully-ingested 3-shard daemon, one per worker mode.

    Session-scoped like the reference service it mirrors: tests only
    query it, and spinning up (and double-ingesting) a daemon per test
    would dominate the suite's runtime.
    """
    from repro.serve import DaemonConfig, ServeDaemon

    daemon = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
        n_shards=3, workers=request.param,
        service=serve_world.config)).start()
    for hour, records in enumerate(serve_world.hourly):
        daemon.ingest_hour(hour, records)
    daemon.drain()
    yield daemon
    daemon.shutdown(drain=False)


@pytest.fixture(scope="session")
def serve_world() -> ServeWorld:
    scenario = Scenario(ScenarioParams.small(seed=3, horizon_days=6))
    hourly = [scenario.agg_records_for(cols)
              for cols in scenario.stream(0, HOURS)]
    config = ServiceConfig(training_window_days=WINDOW)
    reference = TipsyService(scenario.wan, config)
    for hour, records in enumerate(hourly):
        reference.ingest_hour(hour, records)
    return ServeWorld(scenario=scenario, hourly=hourly,
                      reference=reference,
                      contexts=list(scenario.flow_contexts),
                      config=config)
