"""HotSwapShard: equivalence, swap accounting, and the old-or-new
invariant under a concurrent reader while a retrain is in flight."""

import threading

from repro.core.service import TipsyService
from repro.serve.shard import HotSwapShard

from .conftest import HOURS


class TestHotSwapEquivalence:
    def test_matches_single_service_after_full_stream(self, serve_world):
        shard = HotSwapShard(0, serve_world.scenario.wan,
                             serve_world.config)
        for hour, records in enumerate(serve_world.hourly):
            shard.ingest_hour(hour, records)
        contexts = serve_world.contexts[:300]
        assert (shard.predict_batch(contexts)
                == serve_world.reference.predict_batch(contexts))

    def test_swap_per_ingested_hour(self, serve_world):
        shard = HotSwapShard(0, serve_world.scenario.wan,
                             serve_world.config)
        for hour in range(30):
            shard.ingest_hour(hour, serve_world.hourly[hour])
        assert shard.swap_count == 30
        assert shard.last_hour == 29

    def test_health_reflects_training_state(self, serve_world):
        shard = HotSwapShard(0, serve_world.scenario.wan,
                             serve_world.config)
        health = shard.health()
        assert not health.ready and health.trained_days == 0
        for hour in range(25):
            shard.ingest_hour(hour, serve_world.hourly[hour])
        health = shard.health()
        assert health.ready
        assert health.latest_trained_day == 0
        assert health.staleness_hours == 1  # hour 24 awaits day 1's retrain


class TestOldOrNewInvariant:
    def test_concurrent_reader_never_sees_half_retrained_state(
            self, serve_world):
        """Queries racing a day-boundary retrain see old-or-new only.

        Hour 72 carries an eviction + incremental retrain (3-day window,
        day 3 starting).  A reader hammers the shard throughout that
        ingest; every answer must equal either the pre-ingest state's or
        the post-ingest state's — anything else is a torn read of a
        half-retrained model.
        """
        wan = serve_world.scenario.wan
        boundary = 72
        before = TipsyService(wan, serve_world.config)
        after = TipsyService(wan, serve_world.config)
        shard = HotSwapShard(0, wan, serve_world.config)
        for hour in range(boundary):
            before.ingest_hour(hour, serve_world.hourly[hour])
            after.ingest_hour(hour, serve_world.hourly[hour])
            shard.ingest_hour(hour, serve_world.hourly[hour])
        after.ingest_hour(boundary, serve_world.hourly[boundary])

        batch = serve_world.contexts[:40]
        old_answer = before.predict_batch(batch)
        new_answer = after.predict_batch(batch)
        assert old_answer != new_answer  # otherwise the test is vacuous

        observed = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                observed.append(shard.predict_batch(batch))

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            shard.ingest_hour(boundary, serve_world.hourly[boundary])
        finally:
            stop.set()
            reader.join()

        assert observed
        for answer in observed:
            assert answer in (old_answer, new_answer)
        # quiescent state is the new one on both replicas
        assert shard.predict_batch(batch) == new_answer

    def test_full_stream_with_concurrent_reader_ends_identical(
            self, serve_world):
        """Old-or-new holds across every hour, not just one boundary."""
        shard = HotSwapShard(0, serve_world.scenario.wan,
                             serve_world.config)
        warm = 25  # past the first retrain, so the shard is serving
        for hour in range(warm):
            shard.ingest_hour(hour, serve_world.hourly[hour])
        batch = serve_world.contexts[:20]
        failures = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                try:
                    shard.predict_batch(batch)
                except Exception as error:  # pragma: no cover - on failure
                    failures.append(error)
                    return

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for hour in range(warm, HOURS):
                shard.ingest_hour(hour, serve_world.hourly[hour])
        finally:
            stop.set()
            reader.join()
        assert not failures
        assert (shard.predict_batch(batch)
                == serve_world.reference.predict_batch(batch))
