"""The sharded daemon is bit-identical to the single-process service.

The ISSUE's acceptance criterion, checked in both worker modes (the
``trained_daemon`` fixture is parametrized over inline and process):
the same hourly stream into a 3-shard daemon and into one
:class:`TipsyService` must yield *exactly* equal ``predict_batch`` and
``what_if`` answers — not approximately, byte for byte.
"""

import pytest

from repro.serve import DaemonConfig, ServeDaemon, ShardError


class TestDaemonEquivalence:
    def test_predict_batch_bit_identical(self, serve_world,
                                         trained_daemon):
        contexts = serve_world.contexts[:400]
        assert (trained_daemon.predict_batch(contexts)
                == serve_world.reference.predict_batch(contexts))

    def test_predict_batch_with_unavailable_links(self, serve_world,
                                                  trained_daemon):
        contexts = serve_world.contexts[:200]
        links = sorted(
            link.link_id for link in serve_world.scenario.wan.links)
        unavailable = frozenset(links[:2])
        assert (trained_daemon.predict_batch(contexts, k=3,
                                             unavailable=unavailable)
                == serve_world.reference.predict_batch(
                    contexts, k=3, unavailable=unavailable))

    def test_what_if_bit_identical(self, serve_world, trained_daemon):
        flows = [(context, float(50 + 7 * i))
                 for i, context in enumerate(serve_world.contexts)]
        links = sorted(
            link.link_id for link in serve_world.scenario.wan.links)
        withdrawn = frozenset(links[:3])
        assert (trained_daemon.what_if(flows, withdrawn)
                == serve_world.reference.what_if(flows, withdrawn))

    def test_status_sees_every_shard_ready(self, trained_daemon):
        status = trained_daemon.status()
        assert status.n_shards == 3
        assert status.ready
        assert status.ingest_backlog == 0
        assert len(status.shards) == 3
        assert {s.shard_id for s in status.shards} == {0, 1, 2}


class TestDaemonBasics:
    def test_empty_batch_and_empty_what_if(self, serve_world):
        daemon = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=2, workers="inline",
            service=serve_world.config)).start()
        try:
            assert daemon.predict_batch([]) == []
            assert daemon.what_if([], frozenset({1})) == {}
        finally:
            daemon.shutdown()

    def test_single_shard_matches_reference_too(self, serve_world):
        daemon = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=1, workers="inline",
            service=serve_world.config)).start()
        try:
            for hour, records in enumerate(serve_world.hourly):
                daemon.ingest_hour(hour, records)
            daemon.drain()
            contexts = serve_world.contexts[:100]
            assert (daemon.predict_batch(contexts)
                    == serve_world.reference.predict_batch(contexts))
        finally:
            daemon.shutdown()

    def test_queries_after_shutdown_are_rejected(self, serve_world):
        daemon = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=2, workers="inline",
            service=serve_world.config)).start()
        daemon.shutdown()
        with pytest.raises(RuntimeError):
            daemon.predict_batch(serve_world.contexts[:1])

    def test_worker_error_surfaces_as_shard_error(self, serve_world):
        daemon = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=2, workers="inline",
            service=serve_world.config)).start()
        try:
            daemon.ingest_hour(5, serve_world.hourly[5])
            with pytest.raises(ShardError):
                # hours must be monotonic; the ingest thread records the
                # failure and the next drain reports it
                daemon.ingest_hour(3, serve_world.hourly[3])
                daemon.drain()
        finally:
            daemon.shutdown(drain=False)