"""Daemon lifecycle: drain, checkpoint, restart-from-snapshot recovery."""

import json
import os
import signal
import threading
import time

import pytest

from repro.core.service import ServiceConfig
from repro.serve import DaemonConfig, ServeDaemon, ShardError
from repro.serve import daemon as daemon_mod
from repro.serve.daemon import MANIFEST_NAME, read_manifest

from .conftest import HOURS


def _daemon(serve_world, workers="inline", n_shards=3):
    return ServeDaemon(serve_world.scenario.wan, DaemonConfig(
        n_shards=n_shards, workers=workers,
        service=serve_world.config)).start()


class TestDrain:
    def test_shutdown_drains_in_flight_ingest(self, serve_world, tmp_path):
        """Hours queued but not yet applied are finished, not dropped.

        Ingest is fire-and-forget, so at shutdown time the queues can
        still hold work.  A draining shutdown must apply all of it: the
        state checkpointed just before equals the fully-ingested
        reference.
        """
        daemon = _daemon(serve_world)
        for hour, records in enumerate(serve_world.hourly):
            daemon.ingest_hour(hour, records)  # no drain in between
        daemon.checkpoint(tmp_path)  # drains, then snapshots
        daemon.shutdown(drain=True)

        resumed = ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                                     workers="inline")
        try:
            contexts = serve_world.contexts[:200]
            assert (resumed.predict_batch(contexts)
                    == serve_world.reference.predict_batch(contexts))
        finally:
            resumed.shutdown()

    def test_drain_blocks_until_queues_empty(self, serve_world):
        daemon = _daemon(serve_world)
        try:
            for hour in range(30):
                daemon.ingest_hour(hour, serve_world.hourly[hour])
            daemon.drain()
            status = daemon.status()
            assert status.ingest_backlog == 0
            assert status.last_hour == 29
        finally:
            daemon.shutdown()


class TestRestartRecovery:
    @pytest.mark.parametrize("workers", ["inline", "process"])
    def test_resume_is_bit_identical_to_uninterrupted(
            self, serve_world, tmp_path, workers):
        """Kill mid-stream, resume, finish: same answers as never dying."""
        cut = 60  # mid-day, mid-window: the awkward restart point
        first = _daemon(serve_world, workers=workers)
        for hour in range(cut):
            first.ingest_hour(hour, serve_world.hourly[hour])
        first.checkpoint(tmp_path)
        first.shutdown(drain=True)

        resumed = ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                                     workers=workers)
        try:
            assert resumed.last_hour == cut - 1
            for hour in range(cut, HOURS):
                resumed.ingest_hour(hour, serve_world.hourly[hour])
            resumed.drain()
            contexts = serve_world.contexts[:300]
            assert (resumed.predict_batch(contexts)
                    == serve_world.reference.predict_batch(contexts))
        finally:
            resumed.shutdown()

    def test_checkpoint_manifest_is_complete(self, serve_world, tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            for hour in range(26):
                daemon.ingest_hour(hour, serve_world.hourly[hour])
            manifest_path = daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        assert manifest_path == tmp_path / MANIFEST_NAME
        manifest = read_manifest(tmp_path)
        assert manifest["n_shards"] == 2
        assert manifest["last_hour"] == 25
        assert (tmp_path / "shard-00").is_dir()
        assert (tmp_path / "shard-01").is_dir()


def _wedged_worker(conn, shard_id, wan, config, restore_dir=None,
                   obs_enabled=False):
    """Worker that acks the stop protocol but refuses to die.

    Ignores SIGTERM (as user code loaded into a worker legitimately
    can) and sleeps forever after the ack — the shape of the shutdown
    hang the terminate->kill escalation in ``_ProcessShard.stop``
    exists for.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        message = conn.recv()
        if message[0] == "stop":
            conn.send(("ok", None))
            while True:
                time.sleep(60)


def _mute_worker(conn, shard_id, wan, config, restore_dir=None,
                 obs_enabled=False):
    """Worker that dies without acking stop (crash during shutdown)."""
    conn.recv()
    conn.close()
    os._exit(1)


class TestShutdownEscalation:
    """Regression: a wedged worker must never hang or leak at stop()."""

    @pytest.fixture(autouse=True)
    def _fast_timeouts(self, monkeypatch):
        monkeypatch.setattr(
            daemon_mod._ProcessShard, "_STOP_JOIN_TIMEOUT", 0.3)
        monkeypatch.setattr(
            daemon_mod._ProcessShard, "_ESCALATE_JOIN_TIMEOUT", 1.0)
        monkeypatch.setattr(
            daemon_mod._InlineShard, "_STOP_JOIN_TIMEOUT", 0.3)

    def test_stop_kills_sigterm_ignoring_worker(self, serve_world,
                                                monkeypatch):
        monkeypatch.setattr(
            daemon_mod, "shard_worker_main", _wedged_worker)
        shard = daemon_mod._ProcessShard(
            0, serve_world.scenario.wan, serve_world.config)
        started = time.monotonic()
        shard.stop(drain=False)  # used to leak the process silently
        assert time.monotonic() - started < 10
        assert not shard.process.is_alive()
        assert shard.process.exitcode == -signal.SIGKILL

    def test_stop_reaps_worker_that_dies_without_ack(self, serve_world,
                                                     monkeypatch):
        monkeypatch.setattr(
            daemon_mod, "shard_worker_main", _mute_worker)
        shard = daemon_mod._ProcessShard(
            0, serve_world.scenario.wan, serve_world.config)
        with pytest.raises(ShardError, match="worker died"):
            shard.stop(drain=False)
        assert not shard.process.is_alive()

    def test_inline_stop_surfaces_stuck_ingest_thread(self, serve_world,
                                                      monkeypatch):
        shard = daemon_mod._InlineShard(
            0, serve_world.scenario.wan, serve_world.config)
        entered = threading.Event()
        release = threading.Event()

        def wedged_ingest(hour, records):
            entered.set()
            release.wait()

        monkeypatch.setattr(shard.shard, "ingest_hour", wedged_ingest)
        shard.ingest(0, [])
        assert entered.wait(5)  # the thread is inside the slow ingest
        with pytest.raises(ShardError, match="ingest thread"):
            shard.stop(drain=False)
        release.set()  # let the (daemon) thread run to the sentinel
        shard._thread.join(5)


class TestManifestValidation:
    def test_resume_without_checkpoint_fails(self, serve_world, tmp_path):
        with pytest.raises(ShardError, match="manifest"):
            ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                               workers="inline")

    def test_resume_under_wrong_shard_count_fails(self, serve_world,
                                                  tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            daemon.ingest_hour(0, serve_world.hourly[0])
            daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        other = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=3, workers="inline", service=serve_world.config))
        with pytest.raises(ShardError, match="shards"):
            other.start(resume_dir=tmp_path)

    def test_resume_under_wrong_layout_version_fails(self, serve_world,
                                                     tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            daemon.ingest_hour(0, serve_world.hourly[0])
            daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        manifest_path = tmp_path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["layout_version"] = 999
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="layout"):
            ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                               workers="inline")

    def test_config_rejects_bad_shapes(self, serve_world):
        with pytest.raises(ValueError):
            DaemonConfig(n_shards=0)
        with pytest.raises(ValueError):
            DaemonConfig(workers="fibers")
        assert DaemonConfig(service=ServiceConfig()).n_shards == 4