"""Daemon lifecycle: drain, checkpoint, restart-from-snapshot recovery."""

import json

import pytest

from repro.core.service import ServiceConfig
from repro.serve import DaemonConfig, ServeDaemon, ShardError
from repro.serve.daemon import MANIFEST_NAME, read_manifest

from .conftest import HOURS


def _daemon(serve_world, workers="inline", n_shards=3):
    return ServeDaemon(serve_world.scenario.wan, DaemonConfig(
        n_shards=n_shards, workers=workers,
        service=serve_world.config)).start()


class TestDrain:
    def test_shutdown_drains_in_flight_ingest(self, serve_world, tmp_path):
        """Hours queued but not yet applied are finished, not dropped.

        Ingest is fire-and-forget, so at shutdown time the queues can
        still hold work.  A draining shutdown must apply all of it: the
        state checkpointed just before equals the fully-ingested
        reference.
        """
        daemon = _daemon(serve_world)
        for hour, records in enumerate(serve_world.hourly):
            daemon.ingest_hour(hour, records)  # no drain in between
        daemon.checkpoint(tmp_path)  # drains, then snapshots
        daemon.shutdown(drain=True)

        resumed = ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                                     workers="inline")
        try:
            contexts = serve_world.contexts[:200]
            assert (resumed.predict_batch(contexts)
                    == serve_world.reference.predict_batch(contexts))
        finally:
            resumed.shutdown()

    def test_drain_blocks_until_queues_empty(self, serve_world):
        daemon = _daemon(serve_world)
        try:
            for hour in range(30):
                daemon.ingest_hour(hour, serve_world.hourly[hour])
            daemon.drain()
            status = daemon.status()
            assert status.ingest_backlog == 0
            assert status.last_hour == 29
        finally:
            daemon.shutdown()


class TestRestartRecovery:
    @pytest.mark.parametrize("workers", ["inline", "process"])
    def test_resume_is_bit_identical_to_uninterrupted(
            self, serve_world, tmp_path, workers):
        """Kill mid-stream, resume, finish: same answers as never dying."""
        cut = 60  # mid-day, mid-window: the awkward restart point
        first = _daemon(serve_world, workers=workers)
        for hour in range(cut):
            first.ingest_hour(hour, serve_world.hourly[hour])
        first.checkpoint(tmp_path)
        first.shutdown(drain=True)

        resumed = ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                                     workers=workers)
        try:
            assert resumed.last_hour == cut - 1
            for hour in range(cut, HOURS):
                resumed.ingest_hour(hour, serve_world.hourly[hour])
            resumed.drain()
            contexts = serve_world.contexts[:300]
            assert (resumed.predict_batch(contexts)
                    == serve_world.reference.predict_batch(contexts))
        finally:
            resumed.shutdown()

    def test_checkpoint_manifest_is_complete(self, serve_world, tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            for hour in range(26):
                daemon.ingest_hour(hour, serve_world.hourly[hour])
            manifest_path = daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        assert manifest_path == tmp_path / MANIFEST_NAME
        manifest = read_manifest(tmp_path)
        assert manifest["n_shards"] == 2
        assert manifest["last_hour"] == 25
        assert (tmp_path / "shard-00").is_dir()
        assert (tmp_path / "shard-01").is_dir()


class TestManifestValidation:
    def test_resume_without_checkpoint_fails(self, serve_world, tmp_path):
        with pytest.raises(ShardError, match="manifest"):
            ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                               workers="inline")

    def test_resume_under_wrong_shard_count_fails(self, serve_world,
                                                  tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            daemon.ingest_hour(0, serve_world.hourly[0])
            daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        other = ServeDaemon(serve_world.scenario.wan, DaemonConfig(
            n_shards=3, workers="inline", service=serve_world.config))
        with pytest.raises(ShardError, match="shards"):
            other.start(resume_dir=tmp_path)

    def test_resume_under_wrong_layout_version_fails(self, serve_world,
                                                     tmp_path):
        daemon = _daemon(serve_world, n_shards=2)
        try:
            daemon.ingest_hour(0, serve_world.hourly[0])
            daemon.checkpoint(tmp_path)
        finally:
            daemon.shutdown()
        manifest_path = tmp_path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["layout_version"] = 999
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="layout"):
            ServeDaemon.resume(tmp_path, serve_world.scenario.wan,
                               workers="inline")

    def test_config_rejects_bad_shapes(self, serve_world):
        with pytest.raises(ValueError):
            DaemonConfig(n_shards=0)
        with pytest.raises(ValueError):
            DaemonConfig(workers="fibers")
        assert DaemonConfig(service=ServiceConfig()).n_shards == 4