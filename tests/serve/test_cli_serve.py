"""Tests for the ``repro serve`` CLI."""

from repro.__main__ import main
from repro.serve.daemon import MANIFEST_NAME


class TestServeRun:
    def test_run_checkpoints_and_reports(self, tmp_path, capsys):
        target = tmp_path / "ck"
        assert main(["serve", "run", "--size", "small", "--seed", "3",
                     "--days", "2", "--window", "1", "--shards", "2",
                     "--workers", "inline", "--dir", str(target),
                     "--checkpoint-every", "24", "--status-every", "24",
                     "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "serve: started 2 shards (inline)" in out
        assert "final checkpoint" in out
        assert "ingested 48 hours" in out
        assert (target / MANIFEST_NAME).is_file()
        assert (target / "shard-00").is_dir()

    def test_resume_requires_dir(self, capsys):
        assert main(["serve", "run", "--resume"]) == 1
        assert "--resume requires --dir" in capsys.readouterr().err

    def test_resume_continues_the_stream(self, tmp_path, capsys):
        target = tmp_path / "ck"
        assert main(["serve", "run", "--size", "small", "--seed", "3",
                     "--days", "1", "--window", "1", "--shards", "2",
                     "--workers", "inline", "--dir", str(target)]) == 0
        capsys.readouterr()
        assert main(["serve", "run", "--days", "2", "--workers", "inline",
                     "--resume", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "resumed 2 shards" in out
        assert "streaming hours 24..47" in out


class TestServeStatus:
    def test_status_reads_a_checkpoint(self, tmp_path, capsys):
        target = tmp_path / "ck"
        assert main(["serve", "run", "--size", "small", "--seed", "3",
                     "--days", "1", "--window", "1", "--shards", "2",
                     "--workers", "inline", "--dir", str(target)]) == 0
        capsys.readouterr()
        assert main(["serve", "status", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "shard 00" in out
        assert "scenario: size=small" in out

    def test_status_requires_dir(self, capsys):
        assert main(["serve", "status"]) == 1

    def test_status_on_missing_checkpoint_fails(self, tmp_path, capsys):
        assert main(["serve", "status", "--dir",
                     str(tmp_path / "nope")]) == 1
        assert "manifest" in capsys.readouterr().err