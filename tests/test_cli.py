"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_incident_command(self, capsys):
        assert main(["incident"]) == 0
        out = capsys.readouterr().out
        assert "blind" in out
        assert "TIPSY-guided" in out
        assert "withdraw-coordinated" in out

    def test_evaluate_command_small(self, capsys):
        assert main(["evaluate", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Hist_AP/AL/A" in out

    def test_risk_command_small(self, capsys):
        assert main(["risk", "--size", "small", "--seed", "11",
                     "--train-days", "4", "--test-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Links at risk" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_evaluate_compare_flag(self, capsys):
        assert main(["evaluate", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2",
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "measured vs paper" in out
        assert "delta" in out

    def test_report_command(self, tmp_path, capsys):
        output = tmp_path / "r.md"
        assert main(["report", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2",
                     "-o", str(output)]) == 0
        text = output.read_text()
        assert "# TIPSY reproduction report" in text
        assert "Table 7" in text


class TestBenchCommand:
    def test_bench_smoke_runs_and_records(self, capsys, tmp_path):
        assert main(["bench", "--smoke", "--seed", "3", "--workers", "1",
                     "--rounds", "1", "--suite", "pipeline",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stream:" in out
        assert "aggregate (column):" in out
        reports = list(tmp_path.glob("BENCH_*.smoke.json"))
        assert len(reports) == 1

    def test_bench_serving_suite(self, capsys, tmp_path):
        assert main(["bench", "--smoke", "--seed", "3", "--workers", "1",
                     "--rounds", "1", "--suite", "serving",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "retrain (incr):" in out
        assert "what_if (batch):" in out
        assert "stream:" not in out       # pipeline suite not run
        from repro.perf import load_report

        report = load_report(next(tmp_path.glob("BENCH_*.smoke.json")))
        assert "serving_retrain_days_per_s" in report.metrics
        assert "serving_what_if_flows_per_s" in report.metrics
        assert "serving_memo_hits" in report.meta

    def test_bench_rejects_unknown_suite(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--smoke", "--suite", "frobnicate",
                  "--out-dir", str(tmp_path)])

    def test_bench_fails_on_regression(self, capsys, tmp_path):
        from repro.perf import BenchReport, save_report

        # an absurdly fast committed baseline forces a regression flag
        baseline = BenchReport(date="2000-01-01", profile="smoke")
        baseline.record("stream_hours_per_s", 1e15)
        save_report(baseline, tmp_path)
        assert main(["bench", "--smoke", "--seed", "3", "--workers", "1",
                     "--rounds", "1", "--no-save", "--suite", "pipeline",
                     "--out-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestSnapshotCommand:
    def test_save_load_verify_inspect(self, capsys, tmp_path):
        target = str(tmp_path / "snap")
        assert main(["snapshot", "save", "--dir", target, "--seed", "5",
                     "--days", "5", "--window", "3"]) == 0
        out = capsys.readouterr().out
        assert "day segments" in out

        assert main(["snapshot", "inspect", "--dir", target]) == 0
        out = capsys.readouterr().out
        assert "day_counts" in out
        assert "model_grain" in out
        assert "ok" in out

        assert main(["snapshot", "load", "--dir", target, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "models resumed" in out
        assert "verify OK" in out

    def test_load_degrades_on_corruption(self, capsys, tmp_path):
        target = tmp_path / "snap"
        assert main(["snapshot", "save", "--dir", str(target),
                     "--seed", "5", "--days", "5", "--window", "3"]) == 0
        capsys.readouterr()
        segment = next(target.glob("day-*.npz"))
        segment.write_bytes(segment.read_bytes()[:50])
        assert main(["snapshot", "inspect", "--dir", str(target)]) == 1
        assert "checksum mismatch" in capsys.readouterr().out
        # load still succeeds: the lost day is reported, models rebuild
        assert main(["snapshot", "load", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "models rebuilt" in out
        assert "degraded" in out

    def test_load_without_recipe_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["snapshot", "load", "--dir", str(empty)]) == 1
        assert "recipe" in capsys.readouterr().err

    def test_rejects_unknown_action(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["snapshot", "frobnicate", "--dir", str(tmp_path)])
