"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_incident_command(self, capsys):
        assert main(["incident"]) == 0
        out = capsys.readouterr().out
        assert "blind" in out
        assert "TIPSY-guided" in out
        assert "withdraw-coordinated" in out

    def test_evaluate_command_small(self, capsys):
        assert main(["evaluate", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Hist_AP/AL/A" in out

    def test_risk_command_small(self, capsys):
        assert main(["risk", "--size", "small", "--seed", "11",
                     "--train-days", "4", "--test-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Links at risk" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_evaluate_compare_flag(self, capsys):
        assert main(["evaluate", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2",
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "measured vs paper" in out
        assert "delta" in out

    def test_report_command(self, tmp_path, capsys):
        output = tmp_path / "r.md"
        assert main(["report", "--size", "small", "--seed", "7",
                     "--train-days", "4", "--test-days", "2",
                     "-o", str(output)]) == 0
        text = output.read_text()
        assert "# TIPSY reproduction report" in text
        assert "Table 7" in text
