"""Packaging checks: the ``py.typed`` marker must actually ship.

``pyproject.toml`` references the marker via ``[tool.setuptools.package-data]``;
these tests catch the classic failure where the file exists in the repo
but is silently dropped from the built distribution (or never existed at
all), which would turn every downstream ``mypy`` run against the
installed package into a no-op.
"""

import subprocess
import sys
import tarfile
import zipfile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_MARKER = REPO_ROOT / "src" / "repro" / "py.typed"


def _build(kind, out_dir):
    """Build an sdist or wheel via the PEP 517 backend, in a subprocess
    so the backend's cwd requirement doesn't disturb the test runner."""
    code = (
        "import setuptools.build_meta as bm, sys\n"
        f"print(bm.build_{kind}(sys.argv[1]))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code, str(out_dir)],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if result.returncode != 0:
        return None, result.stderr
    return out_dir / result.stdout.strip().splitlines()[-1], None


def test_py_typed_marker_exists_in_tree():
    """pyproject's package-data points at src/repro/py.typed — it must
    exist (an empty file is the PEP 561 convention)."""
    assert SRC_MARKER.is_file()


def test_pyproject_declares_py_typed_package_data():
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "py.typed" in text


def test_sdist_includes_py_typed(tmp_path):
    artifact, err = _build("sdist", tmp_path)
    assert artifact is not None, f"sdist build failed:\n{err}"
    with tarfile.open(artifact) as tar:
        names = tar.getnames()
    assert any(n.endswith("src/repro/py.typed") for n in names), names


def test_wheel_includes_py_typed(tmp_path):
    """Build a real wheel and check the marker lands inside it.

    Skipped (not failed) where the environment cannot build wheels at
    all — old setuptools without the bundled ``wheel`` backend; CI
    installs the pinned dev extra and always runs this.
    """
    artifact, err = _build("wheel", tmp_path)
    if artifact is None:
        assert err is not None
        if "wheel" in err.lower() or "No module named" in err:
            pytest.skip("environment cannot build wheels "
                        "(setuptools without wheel support)")
        pytest.fail(f"wheel build failed:\n{err}")
    with zipfile.ZipFile(artifact) as wheel:
        names = wheel.namelist()
    assert "repro/py.typed" in names, names
