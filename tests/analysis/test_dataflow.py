"""RA7xx determinism dataflow: config, reachability, cache fingerprint.

The marker-driven scenario test lives in ``test_project.py`` (the
``determinism`` fixture); this module covers the pieces markers cannot
express — config parsing and errors, entry-point resolution, exemption
and suppression, RA700, and the rule-set fingerprint folded into the
incremental cache key.
"""

import shutil
from pathlib import Path

import pytest

import repro.analysis.base as analysis_base
import repro.analysis.dataflow as dataflow
from repro.analysis import PROJECT_RULES, analyze_project, ruleset_fingerprint
from repro.analysis.dataflow import (DeterminismConfigError,
                                     find_determinism_config,
                                     read_determinism_table)

FIXTURES = Path(__file__).parent / "fixtures" / "project"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _analyze(tree, **kwargs):
    kwargs.setdefault("cache_dir", None)
    return analyze_project([tree], select=PROJECT_RULES, root=tree,
                           **kwargs)


# -- configuration ------------------------------------------------------------


def _write_pyproject(tmp_path, body):
    path = tmp_path / "pyproject.toml"
    path.write_text(body)
    return path


def test_repo_determinism_table_loads():
    config = read_determinism_table(REPO_ROOT / "pyproject.toml")
    assert config is not None
    assert set(config.contracts) == {
        "parallel-pipeline", "incremental-serving", "snapshot-restore",
        "bgp-equivalence", "sharded-serving"}
    assert config.exempt == ("repro.obs",)
    assert config.is_exempt("repro.obs.metrics")
    assert not config.is_exempt("repro.observatory")


def test_direct_keys_are_contract_sugar(tmp_path):
    config = read_determinism_table(_write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'roundtrip = ["pkg.mod"]\n')))
    assert config.contracts == {"roundtrip": ("pkg.mod",)}


def test_non_list_entry_is_rejected(tmp_path):
    path = _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'exempt = "not-a-list"\n'))
    with pytest.raises(DeterminismConfigError, match="exempt"):
        read_determinism_table(path)


def test_non_string_entry_is_rejected(tmp_path):
    path = _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        "bad = [1, 2]\n"))
    with pytest.raises(DeterminismConfigError, match="bad"):
        read_determinism_table(path)


def test_missing_table_returns_none(tmp_path):
    path = _write_pyproject(tmp_path, "[tool.other]\nx = 1\n")
    assert read_determinism_table(path) is None


def test_find_determinism_config_walks_up(tmp_path):
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'c = ["m"]\n'))
    nested = tmp_path / "deep" / "er"
    nested.mkdir(parents=True)
    config = find_determinism_config(nested)
    assert config is not None and config.contracts == {"c": ("m",)}


def test_empty_table_stops_the_walk_up(tmp_path):
    # fixture trees rely on this: an empty [tool.repro.determinism]
    # shadows any table further up instead of falling through to it
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'c = ["m"]\n'))
    nested = tmp_path / "sub"
    nested.mkdir()
    _write_pyproject(nested, "[tool.repro.determinism]\n")
    config = find_determinism_config(nested)
    assert config is not None and config.contracts == {}


def test_fallback_parser_matches_tomllib(monkeypatch):
    pytest.importorskip("tomllib")
    with_tomllib = read_determinism_table(REPO_ROOT / "pyproject.toml")
    monkeypatch.setattr(dataflow, "tomllib", None)
    fallback = read_determinism_table(REPO_ROOT / "pyproject.toml")
    assert fallback == with_tomllib


# -- reachability & reporting -------------------------------------------------


def test_exempt_module_is_reachable_but_silent():
    report = _analyze(FIXTURES / "determinism")
    assert not any("metrics.py" in v.path for v in report.violations)


def test_unreached_function_is_silent():
    # agg.offline_report is full of sites but no contract reaches it
    report = _analyze(FIXTURES / "determinism")
    assert not any(v.line > 45 and "agg.py" in v.path
                   for v in report.violations)


def test_noqa_suppresses_a_contract_site():
    report = _analyze(FIXTURES / "determinism")
    assert not any(v.code == "RA701" and v.line == 35
                   for v in report.violations)


def test_message_names_contract_entry_and_remedy():
    report = _analyze(FIXTURES / "determinism")
    ra701 = next(v for v in report.violations if v.code == "RA701")
    assert "`shard-equivalence`" in ra701.message
    assert "reachable from `agg.merge_shards`" in ra701.message
    assert "sorted(...)" in ra701.message
    assert "(auto-fixable with --fix)" in ra701.message
    ra704 = next(v for v in report.violations if v.code == "RA704")
    assert "auto-fixable" not in ra704.message  # report-only rule


def test_module_entry_covers_module_level_statements():
    report = _analyze(FIXTURES / "determinism")
    assert any(v.code == "RA703" and "persist.py" in v.path
               and v.line == 5 for v in report.violations)


def test_unresolvable_entry_fires_ra700(tmp_path):
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'ghost-contract = ["nowhere.at_all"]\n'))
    (tmp_path / "mod.py").write_text('"""Doc."""\n')
    report = _analyze(tmp_path)
    assert [v.code for v in report.violations] == ["RA700"]
    violation = report.violations[0]
    assert "ghost-contract" in violation.message
    assert "nowhere.at_all" in violation.message
    assert violation.path.endswith("pyproject.toml")


def test_entry_resolves_through_package_reexport(tmp_path):
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'api = ["pkg.run"]\n'))
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        '"""Doc."""\nfrom .impl import run\n')
    (pkg / "impl.py").write_text(
        '"""Doc."""\n\n\ndef run(xs):\n    return sum(set(xs))\n')
    report = _analyze(tmp_path)
    assert [v.code for v in report.violations] == ["RA702"]
    assert "impl.py" in report.violations[0].path


def test_sum_with_start_argument_is_report_only(tmp_path):
    # exact_total takes exactly one iterable: sum(xs, start) must be
    # reported but never rewritten (the rewrite would TypeError)
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'c = ["mod.total"]\n'))
    (tmp_path / "mod.py").write_text(
        '"""Doc."""\n\n\ndef total(xs, start):\n'
        "    return sum(set(xs), start)\n")
    report = _analyze(tmp_path)
    assert [v.code for v in report.violations] == ["RA702"]
    assert "start argument" in report.violations[0].message
    assert "auto-fixable" not in report.violations[0].message
    assert report.fixes == []


def test_int_literal_set_sum_is_not_flagged(tmp_path):
    # integer summation is exact and order-free; rewriting it to the
    # always-float exact_total would change the result type for nothing
    _write_pyproject(tmp_path, (
        "[tool.repro.determinism]\n"
        'c = ["mod.total"]\n'))
    (tmp_path / "mod.py").write_text(
        '"""Doc."""\n\n\ndef total():\n    return sum({3, 1, 2})\n')
    report = _analyze(tmp_path)
    assert report.violations == [] and report.fixes == []


def test_foreign_pyproject_root_draws_a_scope_warning(tmp_path):
    # two roots with different tables analyzed in one run: the first
    # root's contracts apply, the second is flagged instead of being
    # silently checked against the wrong table
    first = tmp_path / "first"
    second = tmp_path / "second"
    for root, contract in ((first, "a"), (second, "b")):
        root.mkdir()
        _write_pyproject(root, (
            "[tool.repro.determinism]\n"
            f'{contract} = ["mod.run"]\n'))
        (root / "mod.py").write_text(
            '"""Doc."""\n\n\ndef run(xs):\n    return sorted(xs)\n')
    report = analyze_project([first, second], cache_dir=None,
                             select=PROJECT_RULES, root=tmp_path)
    warnings = [v for v in report.violations if v.code == "RA700"]
    assert len(warnings) == 1
    assert warnings[0].path.endswith("second/mod.py")
    assert str(first / "pyproject.toml") in warnings[0].message
    assert str(second / "pyproject.toml") in warnings[0].message

    # a single-root run stays silent
    alone = analyze_project([first], cache_dir=None,
                            select=PROJECT_RULES, root=tmp_path)
    assert alone.violations == []


def test_explicit_config_overrides_the_walk_up(tmp_path):
    (tmp_path / "mod.py").write_text(
        '"""Doc."""\n\n\ndef run(xs):\n    return sum(set(xs))\n')
    config = dataflow.DeterminismConfig(
        contracts={"c": ("mod.run",)}, source="<test>")
    report = _analyze(tmp_path, determinism=config)
    assert [v.code for v in report.violations] == ["RA702"]


# -- the cache fingerprint (regression: rule bumps must invalidate) -----------


def _copy_scenario(tmp_path, name):
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def test_fingerprint_changes_when_a_rule_is_edited(monkeypatch):
    before = ruleset_fingerprint()
    monkeypatch.setitem(analysis_base.RULES, "RA701",
                        ("unordered-iteration", "reworded description"))
    assert ruleset_fingerprint() != before


def test_fingerprint_changes_when_lint_version_is_bumped(monkeypatch):
    before = ruleset_fingerprint()
    monkeypatch.setattr(analysis_base, "LINT_VERSION", "999.0.0")
    assert ruleset_fingerprint() != before


def test_rule_bump_invalidates_every_warm_cache_entry(tmp_path,
                                                      monkeypatch):
    tree = _copy_scenario(tmp_path, "determinism")
    cache_dir = tmp_path / "cache"

    cold = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    warm = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    assert warm.cache_hits == warm.files_scanned > 0

    # a rule-set change (here: a version bump) must miss everywhere —
    # a stale cache serving verdicts from an older rule set would let
    # regressions through silently
    monkeypatch.setattr(analysis_base, "LINT_VERSION", "999.0.0")
    bumped = analyze_project([tree], cache_dir=cache_dir,
                             select=PROJECT_RULES, root=tmp_path)
    assert bumped.cache_hits == 0
    assert bumped.cache_misses == bumped.files_scanned
    assert bumped.violations == cold.violations
