"""Fixture-driven tests: each known-bad snippet fires exactly the rules
its ``# expect: <code>`` markers declare, at the marked lines."""

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<codes>[A-Z0-9,\s]+)")


def expected_violations(path):
    """Parse ``# expect: RA001[, RA002...]`` markers into (line, code)."""
    out = []
    for lineno, text in enumerate(
            path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if not match:
            continue
        for code in match.group("codes").split(","):
            code = code.strip()
            if code:
                out.append((lineno, code))
    return out


def fixture_files():
    # fixtures/project/ exercises the whole-program rules (RA5xx/RA6xx),
    # which never fire in single-file analysis — test_project.py runs an
    # exact-match pass over them with analyze_project instead
    return sorted(p for p in FIXTURES.rglob("*.py")
                  if "project" not in p.relative_to(FIXTURES).parts)


def test_fixture_tree_is_nonempty():
    names = {p.name for p in fixture_files()}
    # one known-bad fixture per rule family, plus clean + suppressed
    assert {"ra001_global_random.py", "ra002_numpy_global.py",
            "ra003_unseeded_rng.py", "ra101_pool_lambda.py",
            "ra102_pool_closure.py", "ra201_wall_clock.py",
            "ra301_mutable_default.py", "ra401_missing_docstring.py",
            "clean.py", "suppressed.py"} <= names


@pytest.mark.parametrize(
    "path", fixture_files(), ids=lambda p: str(p.relative_to(FIXTURES)))
def test_fixture_fires_exactly_the_marked_rules(path):
    violations = analyze_source(path.read_text(), path)
    got = Counter((v.line, v.code) for v in violations)
    want = Counter(expected_violations(path))
    assert got == want, (
        f"{path.name}: expected {sorted(want.elements())}, "
        f"got {sorted(got.elements())}")


def test_every_rule_code_is_covered_by_a_fixture():
    fired = set()
    for path in fixture_files():
        fired.update(code for _, code in expected_violations(path))
    assert {"RA001", "RA002", "RA003", "RA101", "RA102",
            "RA201", "RA301", "RA401"} <= fired


def test_private_modules_exempt_from_docstring_rule():
    path = FIXTURES / "_private_no_docstring.py"
    assert analyze_source(path.read_text(), path) == []


def test_violation_messages_name_the_remedy():
    path = FIXTURES / "ra003_unseeded_rng.py"
    violations = analyze_source(path.read_text(), path)
    assert violations, "expected RA003 violations"
    assert all("mix64" in v.message for v in violations)


def test_hot_path_rule_silent_outside_hot_packages(tmp_path):
    src = (FIXTURES / "hot" / "core" / "ra201_wall_clock.py").read_text()
    cold = tmp_path / "cli" / "timing.py"
    cold.parent.mkdir(parents=True)
    cold.write_text(src)
    assert analyze_source(src, cold) == []


def test_hot_path_packages_are_configurable(tmp_path):
    src = (FIXTURES / "hot" / "core" / "ra201_wall_clock.py").read_text()
    custom = tmp_path / "ingest" / "timing.py"
    custom.parent.mkdir(parents=True)
    custom.write_text(src)
    violations = analyze_source(src, custom,
                                hot_packages=frozenset({"ingest"}))
    assert {v.code for v in violations} == {"RA201"}
