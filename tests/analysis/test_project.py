"""Whole-program analysis: fixtures, call graph, cache, layer config.

The fixture scenarios under ``fixtures/project/`` mirror the style of
the per-file rule fixtures: every ``# expect: RAxxx`` marker must fire
at exactly that line, and nothing else may fire.  ``analyze_project``
runs them with ``select=PROJECT_RULES`` so the per-file families stay
out of the comparison.
"""

import ast
import io
import json
import re
import shutil
import tokenize
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import PROJECT_RULES, analyze_project
from repro.analysis.callgraph import (ProjectGraph, extract_facts,
                                      module_name_for)
from repro.analysis.layers import (LayerConfigError, _fallback_read_layers,
                                   find_layer_config, read_layers_table)
from repro.analysis.project import ProjectCache

FIXTURES = Path(__file__).parent / "fixtures" / "project"
REPO_ROOT = Path(__file__).resolve().parents[2]

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<codes>[A-Z0-9,\s]+)")


def expected_violations(scenario_dir):
    out = []
    for path in sorted(scenario_dir.rglob("*.py")):
        rel = str(path.relative_to(scenario_dir))
        for lineno, text in enumerate(
                path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(text)
            if not match:
                continue
            for code in match.group("codes").split(","):
                if code.strip():
                    out.append((rel, lineno, code.strip()))
    return out


def run_scenario(name):
    scenario = FIXTURES / name
    report = analyze_project([scenario], cache_dir=None,
                             select=PROJECT_RULES, root=scenario)
    return report


@pytest.mark.parametrize("name", ["races", "locks", "layers",
                                  "determinism", "lifecycle",
                                  "durability"])
def test_scenario_fires_exactly_the_marked_rules(name):
    report = run_scenario(name)
    got = Counter((v.path, v.line, v.code) for v in report.violations)
    want = Counter(expected_violations(FIXTURES / name))
    assert got == want, (
        f"{name}: expected {sorted(want.elements())}, "
        f"got {sorted(got.elements())}")


def test_race_report_names_the_dispatch_site():
    report = run_scenario("races")
    transitive = [v for v in report.violations
                  if "helpers.py" in v.path]
    assert transitive, "expected the transitive RA501 finding"
    message = transitive[0].message
    assert "reachable from pool-dispatched `worker.process_shard`" \
        in message
    assert ".submit(...)" in message


def test_lock_report_names_guard_and_remedy():
    report = run_scenario("locks")
    by_line = {v.line: v for v in report.violations}
    read = next(v for v in by_line.values() if "is read" in v.message)
    assert "lock-guarded in `Meter.add`" in read.message
    assert "_locked" in read.message


def test_layer_report_names_the_table_edge():
    report = run_scenario("layers")
    assert report.violations
    assert all("'util' -> 'core'" in v.message
               for v in report.violations)


def test_deadlock_report_names_both_acquisition_sites():
    report = run_scenario("lifecycle")
    cycles = [v for v in report.violations if v.code == "RA801"]
    assert len(cycles) == 2, "both directions of the 2-cycle report"
    first = next(v for v in cycles if v.line == 12)
    assert "`LOCK_B` is acquired while `LOCK_A` is held" in first.message
    assert "deadlock.py:18" in first.message, \
        "the message must name the opposite-order acquisition site"


def test_transitive_blocking_report_names_the_locked_caller():
    report = run_scenario("lifecycle")
    transitive = next(v for v in report.violations
                      if v.code == "RA802" and "_slow_flush" in v.message)
    assert "called via blocking.py:21 in `flush_through_helper`" \
        in transitive.message
    assert "_locked" in transitive.message, "the remedy names the escape"


def test_durability_report_names_pattern_and_protocol():
    report = run_scenario("durability")
    ordering = next(v for v in report.violations
                    if "after the manifest" in v.message)
    assert ordering.line == 37
    assert "(line 35)" in ordering.message
    in_place = next(v for v in report.violations if v.line == 19)
    assert "tracked artifact `data.json`" in in_place.message
    assert "os.replace" in in_place.message


def test_no_orphaned_noqa_markers_in_source_tree(monkeypatch):
    """Every inline `# repro: noqa[RAxxx]` must still suppress a live
    finding: with suppression plumbing disabled, re-analysis must fire
    each suppressed code on each marker line (else the marker is stale
    documentation and should be deleted)."""
    from repro.analysis import suppressed_lines
    from repro.analysis.base import RULES
    from repro.analysis import base as base_mod, callgraph

    markers = []  # (display path, line, code)
    src = REPO_ROOT / "src"
    for path in sorted(src.rglob("*.py")):
        # tokenize so only real COMMENT markers count — docstrings
        # documenting the `# repro: noqa[RAxxx]` syntax are not
        # suppressions
        tokens = tokenize.generate_tokens(
            io.StringIO(path.read_text()).readline)
        for tok_type, tok_string, (lineno, _), _, _ in tokens:
            if tok_type != tokenize.COMMENT:
                continue
            parsed = suppressed_lines(tok_string)
            if not parsed:
                continue
            codes = parsed[1]
            assert codes is not None and codes, (
                f"{path}:{lineno}: bare `# repro: noqa` hides every "
                "rule; list the codes being suppressed")
            for code in codes:
                if not re.fullmatch(r"RA\d+", code):
                    continue  # syntax placeholder (RAxxx), not a rule
                assert code in RULES, (
                    f"{path}:{lineno}: noqa names unknown rule {code}")
                markers.append(
                    (str(path.relative_to(REPO_ROOT)), lineno, code))
    assert markers, "the source tree is known to carry noqa markers"

    def no_suppression(source):
        return {}

    # both suppression paths read the same helper: the per-file filter
    # (apply_suppressions, via base's namespace) and the link-time
    # ModuleFacts.suppressed table built in callgraph.extract_facts
    monkeypatch.setattr(base_mod, "suppressed_lines", no_suppression)
    monkeypatch.setattr(callgraph, "suppressed_lines", no_suppression)
    report = analyze_project([src], cache_dir=None, root=REPO_ROOT)
    fired = {(v.path, v.line, v.code) for v in report.violations}
    orphans = [m for m in markers if m not in fired]
    assert orphans == [], (
        "stale noqa markers (no live finding on that line): "
        + ", ".join(f"{p}:{line} [{code}]" for p, line, code in orphans))


def test_repo_source_tree_is_project_clean():
    """The acceptance gate: the repo obeys its own semantic rules."""
    report = analyze_project([REPO_ROOT / "src"], cache_dir=None,
                             root=REPO_ROOT)
    assert report.files_scanned > 50
    assert report.violations == [], "\n".join(
        v.render() for v in report.violations)


def test_repo_layer_table_is_loadable_and_matches_packages():
    config = read_layers_table(REPO_ROOT / "pyproject.toml")
    assert config is not None and config.root == "repro"
    packages = {p.name for p in (REPO_ROOT / "src" / "repro").iterdir()
                if p.is_dir() and (p / "__init__.py").exists()}
    declared = set(config.allowed) - {"repro"}
    assert packages == declared, (
        "every package must be declared in [tool.repro.layers] "
        f"(missing: {packages - declared}, stale: {declared - packages})")


# -- the incremental cache ----------------------------------------------------


def _copy_scenario(tmp_path, name):
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def test_cache_cold_then_warm_then_one_changed_file(tmp_path):
    tree = _copy_scenario(tmp_path, "races")
    cache_dir = tmp_path / "cache"

    cold = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    assert cold.cache_hits == 0
    assert cold.cache_misses == cold.files_scanned > 0

    warm = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    assert warm.cache_misses == 0
    assert warm.cache_hits == warm.files_scanned
    assert warm.violations == cold.violations

    changed = tree / "helpers.py"
    changed.write_text(changed.read_text() + "\n# cache-buster\n")
    third = analyze_project([tree], cache_dir=cache_dir,
                            select=PROJECT_RULES, root=tmp_path)
    assert third.cache_misses == 1, "only the edited file re-analyzes"
    assert third.cache_hits == third.files_scanned - 1
    assert third.violations == cold.violations


def test_cache_results_identical_with_and_without_cache(tmp_path):
    tree = _copy_scenario(tmp_path, "locks")
    cache_dir = tmp_path / "cache"
    analyze_project([tree], cache_dir=cache_dir,
                    select=PROJECT_RULES, root=tmp_path)
    cached = analyze_project([tree], cache_dir=cache_dir,
                             select=PROJECT_RULES, root=tmp_path)
    uncached = analyze_project([tree], cache_dir=None,
                               select=PROJECT_RULES, root=tmp_path)
    assert cached.cache_hits == cached.files_scanned
    assert cached.violations == uncached.violations


def test_ruleset_fingerprint_covers_the_ra8xx_rule_files(tmp_path,
                                                         monkeypatch):
    """Editing lifecycle.py or durability.py must change the
    fingerprint — warm caches may never serve verdicts computed by an
    older rule set."""
    import repro.analysis.base as base_mod

    analysis_dir = Path(base_mod.__file__).resolve().parent
    baseline = base_mod.ruleset_fingerprint()
    copy = tmp_path / "analysis"
    shutil.copytree(analysis_dir, copy,
                    ignore=shutil.ignore_patterns("__pycache__"))
    monkeypatch.setattr(base_mod, "__file__", str(copy / "base.py"))
    assert base_mod.ruleset_fingerprint() == baseline, \
        "an identical copy of the rule sources hashes identically"
    seen = {baseline}
    for rule_file in ("lifecycle.py", "durability.py"):
        target = copy / rule_file
        target.write_bytes(target.read_bytes() + b"\n# edited\n")
        fingerprint = base_mod.ruleset_fingerprint()
        assert fingerprint not in seen, \
            f"editing {rule_file} must change the fingerprint"
        seen.add(fingerprint)


def test_warm_cache_invalidates_when_ruleset_changes(tmp_path,
                                                     monkeypatch):
    from repro.analysis import project as project_mod

    tree = _copy_scenario(tmp_path, "lifecycle")
    cache_dir = tmp_path / "cache"
    cold = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    warm = analyze_project([tree], cache_dir=cache_dir,
                           select=PROJECT_RULES, root=tmp_path)
    assert warm.cache_hits == warm.files_scanned

    real = project_mod.ruleset_fingerprint
    monkeypatch.setattr(project_mod, "ruleset_fingerprint",
                        lambda: "rule-edit-" + real())
    third = analyze_project([tree], cache_dir=cache_dir,
                            select=PROJECT_RULES, root=tmp_path)
    assert third.cache_hits == 0, \
        "a rule-set edit must miss every warm entry"
    assert third.cache_misses == third.files_scanned
    assert third.violations == cold.violations


def test_cache_key_depends_on_analysis_params(tmp_path):
    cache = ProjectCache(tmp_path, params_key="a")
    other = ProjectCache(tmp_path, params_key="b")
    content = b"x = 1\n"
    assert cache.key_for(content, "m") != other.key_for(content, "m")
    assert cache.key_for(content, "m") != cache.key_for(content, "n")
    assert cache.key_for(content, "m") == cache.key_for(content, "m")


def test_corrupt_cache_entry_is_a_miss_not_a_crash(tmp_path):
    tree = _copy_scenario(tmp_path, "locks")
    cache_dir = tmp_path / "cache"
    analyze_project([tree], cache_dir=cache_dir,
                    select=PROJECT_RULES, root=tmp_path)
    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json")
    report = analyze_project([tree], cache_dir=cache_dir,
                             select=PROJECT_RULES, root=tmp_path)
    assert report.cache_hits == 0
    assert report.cache_misses == report.files_scanned


def test_report_json_carries_cache_counters(tmp_path):
    tree = _copy_scenario(tmp_path, "locks")
    report = analyze_project([tree], cache_dir=tmp_path / "cache",
                             select=PROJECT_RULES, root=tmp_path)
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["cache"] == {"hits": 0,
                               "misses": report.files_scanned}


# -- module naming & call-graph resolution ------------------------------------


def test_module_name_walks_package_tree(tmp_path):
    pkg = tmp_path / "top" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "top" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(pkg / "mod.py") == "top.sub.mod"
    assert module_name_for(pkg / "__init__.py") == "top.sub"
    (tmp_path / "script.py").write_text("")
    assert module_name_for(tmp_path / "script.py") == "script"


def _facts_for(tmp_path, rel, source, roots):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return extract_facts(ast.parse(source), source, path, rel,
                         frozenset(roots))


def test_call_graph_follows_package_reexports(tmp_path):
    (tmp_path / "pkg").mkdir()
    init = _facts_for(tmp_path, "pkg/__init__.py",
                      "from .impl import run\n", {"pkg"})
    # create the real package layout first so module names resolve
    impl = _facts_for(tmp_path, "pkg/impl.py",
                      "STATE = []\n\n\ndef run():\n    STATE.append(1)\n",
                      {"pkg"})
    main = _facts_for(
        tmp_path, "main.py",
        "import pkg\n\n\ndef go(pool):\n    pool.submit(pkg.run)\n",
        {"pkg"})
    graph = ProjectGraph.link([init, impl, main])
    assert graph.resolve_callable("pkg.run") == ("pkg.impl", "run")
    roots = graph.dispatch_roots()
    assert [key for key, _m, _d in roots] == [("pkg.impl", "run")]


def test_call_graph_resolves_class_instantiation_to_init(tmp_path):
    facts = _facts_for(
        tmp_path, "mod.py",
        "class Worker:\n"
        "    def __init__(self):\n"
        "        Worker.count = 1\n",
        {"mod"})
    graph = ProjectGraph.link([facts])
    assert graph.resolve_callable("mod.Worker") == \
        ("mod", "Worker.__init__")
    assert graph.resolve_callable("mod.Worker.missing") is None
    assert graph.resolve_callable("nowhere.at.all") is None


def test_unresolvable_calls_add_no_edges(tmp_path):
    facts = _facts_for(
        tmp_path, "mod.py",
        "def go(thing):\n    thing.run()\n    unknown_name()\n",
        {"mod"})
    graph = ProjectGraph.link([facts])
    origin = graph.reachable_from([("mod", "go")])
    assert set(origin) == {("mod", "go")}


def test_pool_map_needs_poolish_receiver(tmp_path):
    source = (
        "def shard(x):\n    return x\n\n"
        "def a(pool, items):\n    return pool.map(shard, items)\n\n"
        "def b(items):\n    return map(str, items)\n\n"
        "def c(executor, items):\n    return executor.map(shard, items)\n"
    )
    facts = _facts_for(tmp_path, "mod.py", source, {"mod"})
    dispatches = [d for fn in facts.functions.values()
                  for d in fn.dispatches]
    assert len(dispatches) == 2  # pool.map and executor.map, not map()


# -- layer configuration ------------------------------------------------------


def _write_pyproject(tmp_path, body):
    path = tmp_path / "pyproject.toml"
    path.write_text(body)
    return path


def test_cyclic_layer_table_is_rejected(tmp_path):
    path = _write_pyproject(tmp_path, (
        "[tool.repro.layers]\n"
        'root = "x"\n'
        'a = ["b"]\n'
        'b = ["a"]\n'))
    with pytest.raises(LayerConfigError, match="cyclic"):
        read_layers_table(path)


def test_unknown_layer_reference_is_rejected(tmp_path):
    path = _write_pyproject(tmp_path, (
        "[tool.repro.layers]\n"
        'a = ["ghost"]\n'))
    with pytest.raises(LayerConfigError, match="ghost"):
        read_layers_table(path)


def test_missing_table_returns_none(tmp_path):
    path = _write_pyproject(tmp_path, "[tool.other]\nx = 1\n")
    assert read_layers_table(path) is None


def test_find_layer_config_walks_up(tmp_path):
    _write_pyproject(tmp_path, (
        "[tool.repro.layers]\n"
        'root = "x"\n'
        "a = []\n"))
    nested = tmp_path / "deep" / "er"
    nested.mkdir(parents=True)
    config = find_layer_config(nested)
    assert config is not None and config.root == "x"


def test_fallback_parser_matches_tomllib():
    tomllib = pytest.importorskip("tomllib")
    for path in (REPO_ROOT / "pyproject.toml",
                 FIXTURES / "layers" / "pyproject.toml"):
        text = path.read_text()
        expected = tomllib.loads(text)["tool"]["repro"]["layers"]
        assert _fallback_read_layers(text, str(path)) == expected


def test_wildcard_layer_may_import_anything(tmp_path):
    config = read_layers_table(_write_pyproject(tmp_path, (
        "[tool.repro.layers]\n"
        'root = "x"\n'
        'glue = ["*"]\n'
        "leaf = []\n")))
    assert config.permits("glue", "leaf")
    assert config.permits("glue", "glue")
    assert not config.permits("leaf", "glue")
