"""CLI tests for ``repro lint``: exit codes, formats, rule listing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_exit_zero_on_clean_tree(capsys):
    assert lint_main([str(FIXTURES / "clean.py")]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


@pytest.mark.parametrize("fixture", [
    "ra001_global_random.py", "ra002_numpy_global.py",
    "ra003_unseeded_rng.py", "ra101_pool_lambda.py",
    "ra102_pool_closure.py", "hot/core/ra201_wall_clock.py",
    "ra301_mutable_default.py",
])
def test_exit_nonzero_on_each_rule_fixture(fixture, capsys):
    """Acceptance: `repro lint` exits non-zero on every rule's fixture."""
    assert lint_main([str(FIXTURES / fixture)]) == 1
    assert "RA" in capsys.readouterr().out


def test_json_format_is_machine_readable(capsys):
    code = lint_main([str(FIXTURES / "ra301_mutable_default.py"),
                      "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["counts_by_code"].keys() == {"RA301"}


def test_output_file_written(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    lint_main([str(FIXTURES / "ra001_global_random.py"),
               "--format", "json", "-o", str(out_file)])
    capsys.readouterr()
    assert json.loads(out_file.read_text())["clean"] is False


def test_select_filters_rules(capsys):
    # fixture only contains RA001 violations; selecting RA201 finds none
    assert lint_main([str(FIXTURES / "ra001_global_random.py"),
                      "--select", "RA201"]) == 0
    capsys.readouterr()


def test_unknown_select_code_errors():
    with pytest.raises(SystemExit, match="unknown rule code"):
        lint_main([str(FIXTURES), "--select", "RA999"])


def test_missing_path_exits_nonzero(capsys):
    assert lint_main(["definitely/not/a/path.py"]) == 1
    capsys.readouterr()


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RA001", "RA002", "RA003", "RA101", "RA102",
                 "RA201", "RA301"):
        assert code in out


def test_repro_lint_subcommand_end_to_end():
    """`python -m repro lint src` — the exact CI invocation — is clean."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "--format", "json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["clean"] is True
    assert payload["files_scanned"] > 50
