"""CLI tests for ``repro lint``: exit codes, formats, rule listing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_exit_zero_on_clean_tree(capsys):
    assert lint_main([str(FIXTURES / "clean.py")]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


@pytest.mark.parametrize("fixture", [
    "ra001_global_random.py", "ra002_numpy_global.py",
    "ra003_unseeded_rng.py", "ra101_pool_lambda.py",
    "ra102_pool_closure.py", "hot/core/ra201_wall_clock.py",
    "ra301_mutable_default.py",
])
def test_exit_nonzero_on_each_rule_fixture(fixture, capsys):
    """Acceptance: `repro lint` exits non-zero on every rule's fixture."""
    assert lint_main([str(FIXTURES / fixture)]) == 1
    assert "RA" in capsys.readouterr().out


def test_json_format_is_machine_readable(capsys):
    code = lint_main([str(FIXTURES / "ra301_mutable_default.py"),
                      "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["counts_by_code"].keys() == {"RA301"}


def test_output_file_written(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    lint_main([str(FIXTURES / "ra001_global_random.py"),
               "--format", "json", "-o", str(out_file)])
    capsys.readouterr()
    assert json.loads(out_file.read_text())["clean"] is False


def test_select_filters_rules(capsys):
    # fixture only contains RA001 violations; selecting RA201 finds none
    assert lint_main([str(FIXTURES / "ra001_global_random.py"),
                      "--select", "RA201"]) == 0
    capsys.readouterr()


def test_unknown_select_code_errors():
    with pytest.raises(SystemExit, match="unknown rule code"):
        lint_main([str(FIXTURES), "--select", "RA999"])


def test_missing_path_exits_nonzero(capsys):
    assert lint_main(["definitely/not/a/path.py"]) == 1
    capsys.readouterr()


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RA001", "RA002", "RA003", "RA101", "RA102",
                 "RA201", "RA301"):
        assert code in out


def test_list_rules_marks_project_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RA501*" in out and "RA502*" in out and "RA601*" in out
    assert "--project" in out


def test_fix_without_project_is_a_usage_error(capsys):
    assert lint_main([str(FIXTURES), "--fix"]) == 2
    assert "--fix requires --project" in capsys.readouterr().err


def test_check_without_fix_is_a_usage_error(capsys):
    assert lint_main([str(FIXTURES), "--check"]) == 2
    assert "--check only makes sense with --fix" \
        in capsys.readouterr().err


def test_project_mode_fires_semantic_rules_and_reports_cache(
        tmp_path, capsys):
    scenario = FIXTURES / "project" / "locks"
    code = lint_main([str(scenario), "--project", "--format", "json",
                      "--cache-dir", str(tmp_path / "cache"),
                      "--select", "RA502"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts_by_code"].keys() == {"RA502"}
    assert payload["cache"] == {"hits": 0,
                                "misses": payload["files_scanned"]}


def test_sarif_output_is_valid_for_code_scanning(capsys):
    code = lint_main([str(FIXTURES / "ra301_mutable_default.py"),
                      "--format", "sarif"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {r["id"] for r in driver["rules"]} == {"RA301"}
    location = run["results"][0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert location["region"]["startLine"] > 0


# -- --changed-only ----------------------------------------------------------

def _git_repo(tmp_path, branch="main"):
    def git(*args):
        subprocess.run(["git", *args], cwd=tmp_path, check=True,
                       capture_output=True)
    git("init", "-q", "-b", branch)
    git("config", "user.email", "tests@example.invalid")
    git("config", "user.name", "tests")
    return git


def test_changed_only_skips_unchanged_violations(tmp_path, monkeypatch,
                                                 capsys):
    git = _git_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    legacy = src / "legacy.py"
    legacy.write_text('"""Doc."""\nimport random\nx = random.random()\n')
    git("add", ".")
    git("commit", "-q", "-m", "base")
    git("checkout", "-q", "-b", "feature")
    (src / "new.py").write_text('"""Doc."""\n')  # untracked and clean
    monkeypatch.chdir(tmp_path)
    # the legacy violation predates the merge-base, so the diff is clean
    assert lint_main(["src", "--changed-only"]) == 0
    # ... while a full lint still sees it
    assert lint_main(["src"]) == 1
    capsys.readouterr()


def test_changed_only_flags_violations_in_the_diff(tmp_path, monkeypatch,
                                                   capsys):
    git = _git_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text('"""Doc."""\n')
    git("add", ".")
    git("commit", "-q", "-m", "base")
    git("checkout", "-q", "-b", "feature")
    bad = src / "bad.py"
    bad.write_text('"""Doc."""\nimport random\nx = random.random()\n')
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--changed-only"]) == 1
    out = capsys.readouterr().out
    assert "bad.py" in out and "ok.py" not in out


def test_changed_only_with_no_changes_exits_clean(tmp_path, monkeypatch,
                                                  capsys):
    git = _git_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text('"""Doc."""\n')
    git("add", ".")
    git("commit", "-q", "-m", "base")
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--changed-only"]) == 0
    assert "0 files scanned" in capsys.readouterr().out


def test_changed_only_without_a_merge_base_lints_everything(
        tmp_path, monkeypatch, capsys):
    git = _git_repo(tmp_path, branch="trunk")  # no main/origin ref
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(
        '"""Doc."""\nimport random\nx = random.random()\n')
    git("add", ".")
    git("commit", "-q", "-m", "base")
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--changed-only"]) == 1
    captured = capsys.readouterr()
    assert "linting everything" in captured.err
    assert "bad.py" in captured.out


_DET_PYPROJECT = '[tool.repro.determinism]\nall = ["a", "b"]\n'
_RA702_MODULE = '"""Doc."""\n\n\ndef f(xs):\n    return sum(set(xs))\n'


def _project_with_one_changed_file(tmp_path):
    """Git repo: a.py predates the merge-base, b.py is new on a branch.

    Both carry the same RA702 violation; only b.py's should be
    reported under ``--project --changed-only``.
    """
    git = _git_repo(tmp_path)
    (tmp_path / "pyproject.toml").write_text(_DET_PYPROJECT)
    (tmp_path / "a.py").write_text(_RA702_MODULE)
    git("add", ".")
    git("commit", "-q", "-m", "base")
    git("checkout", "-q", "-b", "feature")
    (tmp_path / "b.py").write_text(_RA702_MODULE)


@pytest.mark.parametrize("flags", [
    ["--project", "--changed-only"],
    ["--changed-only", "--project"],  # flag order must not matter
])
def test_project_changed_only_restricts_the_report(flags, tmp_path,
                                                   monkeypatch, capsys):
    _project_with_one_changed_file(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = lint_main([".", *flags, "--no-cache", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    # the *analysis* still spans the whole tree (project rules are only
    # sound over the full module graph) ...
    assert payload["files_scanned"] == 2
    # ... but the *report* — violations and pending fixes — covers only
    # the changed file
    assert [v["path"] for v in payload["violations"]] == ["b.py"]
    assert payload["fixable_count"] == 1


def test_project_changed_only_with_clean_diff_exits_zero(
        tmp_path, monkeypatch, capsys):
    _project_with_one_changed_file(tmp_path)
    (tmp_path / "b.py").write_text('"""Doc."""\n')
    monkeypatch.chdir(tmp_path)
    assert lint_main([".", "--project", "--changed-only",
                      "--no-cache"]) == 0
    capsys.readouterr()


# -- --fix --------------------------------------------------------------------

FIXABLE = FIXTURES / "project" / "fixable"


def _fixable_copy(tmp_path):
    import shutil
    target = tmp_path / "fixable"
    shutil.copytree(FIXABLE, target)
    return target


def test_fix_check_previews_diff_without_writing(tmp_path, monkeypatch,
                                                 capsys):
    tree = _fixable_copy(tmp_path)
    original = (tree / "mod.py").read_text()
    monkeypatch.chdir(tree)
    code = lint_main([".", "--project", "--fix", "--check",
                      "--no-cache", "--format", "json"])
    assert code == 1  # pending fixes: the tree is not clean yet
    captured = capsys.readouterr()
    assert (tree / "mod.py").read_text() == original
    # diff and summary go to stderr; stdout stays machine-parseable
    assert "--- a/mod.py" in captured.err
    assert "pending (not written)" in captured.err
    payload = json.loads(captured.out)
    assert payload["fixable_count"] == len(payload["violations"]) == 4


def test_fix_applies_and_relints_clean(tmp_path, monkeypatch, capsys):
    tree = _fixable_copy(tmp_path)
    monkeypatch.chdir(tree)
    code = lint_main([".", "--project", "--fix", "--no-cache"])
    captured = capsys.readouterr()
    assert "4 fix(es) applied in 1 file(s)" in captured.err
    # the post-fix re-lint sees a clean tree, so the run exits 0
    assert code == 0
    assert "exact_total" in (tree / "mod.py").read_text()


def test_repro_lint_subcommand_end_to_end():
    """`python -m repro lint src` — the exact CI invocation — is clean."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "--format", "json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["clean"] is True
    assert payload["files_scanned"] > 50


def test_repro_lint_project_subcommand_end_to_end():
    """`python -m repro lint --project src` — the acceptance gate —
    exits 0 on the repo's own tree, semantic rules included."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--project", "src",
         "--no-cache", "--format", "json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["clean"] is True
