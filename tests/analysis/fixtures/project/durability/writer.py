"""RA804 fixture: tracked artifacts committed off-protocol."""

import json
import os

MANIFEST = "MANIFEST.json"


def _write(path, payload):
    # protocol-compliant helper: targets are tmp names, fsynced before
    # the caller renames them over the tracked name
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())


def write_direct(root, payload):
    with open(root / "data.json", "w") as handle:  # expect: RA804
        json.dump(payload, handle)


def rename_commit(root):
    os.rename(root / "stage.npz", root / "final.npz")  # expect: RA804


def replace_without_fsync(root, payload):
    with open(root / "table.npz.tmp", "wb") as handle:
        handle.write(payload)
    os.replace(root / "table.npz.tmp", root / "table.npz")  # expect: RA804


def manifest_before_artifact(root, payload):
    _write(root / "MANIFEST.json.tmp", {"entries": 1})
    os.replace(root / "MANIFEST.json.tmp", root / MANIFEST)
    _write(root / "data.json.tmp", payload)
    os.replace(root / "data.json.tmp", root / "data.json")  # expect: RA804


def commit_all(root, payload):
    # the clean shape: artifacts first, manifest last, fsync before
    # every replace (reached through _write)
    _write(root / "data.json.tmp", payload)
    os.replace(root / "data.json.tmp", root / "data.json")
    _write(root / "MANIFEST.json.tmp", {"entries": 1})
    os.replace(root / "MANIFEST.json.tmp", root / MANIFEST)


def untracked_scratch(root, payload):
    # not in the durability table: the protocol does not apply
    with open(root / "scratch.log", "w") as handle:
        handle.write(str(payload))
