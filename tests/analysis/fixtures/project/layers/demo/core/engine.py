"""RA601 fixture: core importing down into util is allowed."""

from demo.util.config import SCALE  # allowed: core -> util

# a sanctioned exception, recorded inline with a why-comment
from demo.forbidden.zone import secret  # repro: noqa[RA601]


class Engine:
    pass


def spin(x):
    return x * SCALE + secret()
