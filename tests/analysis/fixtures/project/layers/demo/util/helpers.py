"""RA601 fixture: util reaching up into core."""

from typing import TYPE_CHECKING

from demo.core.engine import spin  # expect: RA601

from ..core import engine  # expect: RA601

if TYPE_CHECKING:
    # TYPE_CHECKING imports are annotation-only: never a layer edge
    from demo.core.engine import Engine


def helper(x):
    return spin(x) + engine.spin(x)


def lazy_helper(x):
    # function-scope import: the sanctioned cycle-break, never flagged
    from demo.core.engine import spin as lazy_spin
    return lazy_spin(x)


def annotate(e: "Engine") -> "Engine":
    return e
