"""RA601 fixture: a leaf util module (imports nothing internal)."""

SCALE = 3
