"""RA501 fixture: pool dispatch reaching shared-state writes."""

from concurrent.futures import ProcessPoolExecutor

import helpers

TOTALS = {}
_BY_DESIGN = {}
PARENT_STATE = {}


def process_shard(shard):
    total = sum(shard)
    TOTALS[id(shard)] = total  # expect: RA501
    helpers.record(total)
    return total


def warm_cache(shard):
    # deliberate per-process cache: suppressed with a why-comment
    _BY_DESIGN["last"] = shard  # repro: noqa[RA501]
    return len(shard)


def safe_parent(results):
    # parent-side write: NOT reachable from any dispatch, never flagged
    PARENT_STATE["merged"] = sum(results)
    return PARENT_STATE


def run(shards):
    futures = []
    with ProcessPoolExecutor() as pool:
        for shard in shards:
            futures.append(pool.submit(process_shard, shard))
            futures.append(pool.submit(warm_cache, shard))
    return safe_parent([f.result() for f in futures])
