"""RA501 fixture: transitively-reached module-state mutation."""

_SEEN = []


def record(total):
    # reached via worker.process_shard, which is pool-dispatched
    _SEEN.append(total)  # expect: RA501


def reset():
    # also writes module state, but nothing dispatched reaches it...
    global _SEEN
    _SEEN = []
