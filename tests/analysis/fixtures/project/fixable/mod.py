"""Auto-fixable fixture: every site here has a safe rewrite.

The fixer tests import this module, record its outputs, run ``--fix``
on a copy, re-import, and compare — the rewrites must not change what
the functions compute (only make the order explicit).
"""

import numpy as np


def total_mass(values):
    distinct = set(values)
    return sum(distinct)


def ordered_names(names):
    out = []
    for name in {n.lower() for n in names}:
        out.append(name)
    return out


def zero_grid(n):
    return np.zeros(n)


def link_index(links):
    return np.array(links, dtype=np.int_)
