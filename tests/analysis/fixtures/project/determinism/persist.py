"""Snapshot contract: a whole-module entry covers <module> statements."""

import numpy as np

SCHEMA = np.arange(4)  # expect: RA703


def snapshot(table):
    return np.asarray(list(table.values()))  # expect: RA703


def restore(columns):
    out = {}
    for name in columns.keys():
        out[name] = columns[name]
    return out
