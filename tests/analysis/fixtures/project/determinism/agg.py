"""RA70x fixture: determinism sites on and off the contract paths."""

import random
import time

import numpy as np

import metrics


def merge_shards(shards):
    keys = set()
    for shard in shards:
        keys = keys | set(shard)
    out = []
    for key in keys:  # expect: RA701
        out.append(key)
    metrics.record(len(out))
    return out, checksum(shards), started_at(), labels(out)


def checksum(parts):
    total = 0.0
    for part in frozenset(parts):  # expect: RA702
        total += float(part)
    return total + sum({1.0, 2.0})  # expect: RA702


def started_at():
    return time.time()  # expect: RA704


def labels(names):
    # justified: display-only cache, order never leaks into results
    return list({str(n) for n in names})  # repro: noqa[RA701]


class Accumulator:
    def __init__(self, n):
        self.totals = np.zeros(n)  # expect: RA703

    def index(self, links):
        return np.array(links, dtype=np.int_)  # expect: RA703


def offline_report(rows):
    # not reachable from any contract entry: these sites stay silent
    seen = set(rows)
    return sum(seen), random.random(), time.time()
