"""Exempt instrumentation module: reachable but never reported."""

import time


def record(value):
    tags = {"emit", str(value)}
    return sorted(tags), time.time(), sum({0.5, float(value)})
