"""RA502 fixture: lock-guarded attributes touched off-lock."""

import threading


class Meter:
    def __init__(self):
        self._lock = threading.Lock()
        # __init__ is exempt: the object is not shared yet
        self._events = []
        self._count = 0

    def add(self, event):
        with self._lock:
            self._events.append(event)
            self._count += 1

    @property
    def count(self):
        return self._count  # expect: RA502

    def reset(self):
        self._events = []  # expect: RA502
        with self._lock:
            self._count = 0

    def peek_unsafe(self):
        # documented deliberate dirty read, suppressed inline
        return self._count  # repro: noqa[RA502]

    def _drain_locked(self):
        # `_locked` suffix: the caller must hold self._lock
        drained = list(self._events)
        self._events.clear()
        return drained

    def drain(self):
        with self._lock:
            return self._drain_locked()


class Unguarded:
    """No lock attribute at all: RA502 never applies here."""

    def __init__(self):
        self.values = []

    def add(self, value):
        self.values.append(value)
