"""RA805 fixture: resources opened, used locally, never closed."""


def count_lines(path):
    handle = open(path)  # expect: RA805
    return len(handle.readlines())


def read_config(path):
    with open(path) as handle:  # with block: clean
        return handle.read()


def pass_through(path):
    handle = open(path)
    return handle  # escapes to the caller: the caller owns closing


def explicit_close(path):
    handle = open(path)
    data = handle.read()
    handle.close()
    return data
