"""RA803 fixture: leaked workers and unbounded shutdown joins."""

import threading


class Pump:
    """Starts a worker, no join/terminate/kill anywhere in the class."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()  # expect: RA803

    def _run(self):
        pass


class Service:
    """Reaps its worker, but with a join that can hang forever."""

    def __init__(self):
        self._worker_thread = threading.Thread(target=self._run)
        self._worker_thread.start()

    def _run(self):
        pass

    def stop(self):
        self._worker_thread.join()  # expect: RA803


class Clean:
    """Bounded join on the shutdown path: nothing to report."""

    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def stop(self):
        self._worker.join(timeout=5.0)
