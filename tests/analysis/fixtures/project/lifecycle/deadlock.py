"""RA801 fixture: two locks taken in opposite orders on two paths."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
LOCK_C = threading.Lock()


def transfer():
    with LOCK_A:
        with LOCK_B:  # expect: RA801
            return 1


def audit():
    with LOCK_B:
        with LOCK_A:  # expect: RA801
            return 2


def ordered_one():
    # same nesting order as ordered_two: consistent, no cycle
    with LOCK_A:
        with LOCK_C:
            return 3


def ordered_two():
    with LOCK_A:
        with LOCK_C:
            return 4
