"""RA802 fixture: unbounded blocking work on locked paths."""

import threading
import time

LOCK = threading.Lock()


def wait_under_lock(worker):
    with LOCK:
        worker.join()  # expect: RA802


def sleep_under_lock():
    with LOCK:
        time.sleep(1)  # expect: RA802


def flush_through_helper():
    with LOCK:
        _slow_flush()


def _slow_flush():
    # no lock held lexically, but flush_through_helper calls in with
    # LOCK held: the transitive half of RA802
    time.sleep(2)  # expect: RA802


def drain_via_convention():
    with LOCK:
        _drain_locked()


def _drain_locked():
    # `_locked` suffix documents caller-holds-lock (RA502 convention):
    # deliberate under-lock work, exempt from the transitive check
    time.sleep(0.01)


def bounded_wait(worker):
    with LOCK:
        worker.join(timeout=1.0)  # bounded: clean
