"""Known-bad: mutable default argument values (RA301)."""
from collections import defaultdict


def accumulate(value, acc=[]):  # expect: RA301
    acc.append(value)
    return acc


def index(key, table={}):  # expect: RA301
    return table.setdefault(key, len(table))


def bucket(value, *, seen=set(), counts=defaultdict(int)):  # expect: RA301, RA301
    seen.add(value)
    counts[value] += 1
    return seen, counts


def fine(value, acc=None, label="x", limit=10):
    if acc is None:
        acc = []
    acc.append(value)
    return acc
