"""Known-bad: lambdas handed across the process-pool boundary (RA101)."""
from concurrent.futures import ProcessPoolExecutor


def fan_out(hours):
    with ProcessPoolExecutor(initializer=lambda: None) as pool:  # expect: RA101
        futures = [pool.submit(lambda h: h * 2, hour)  # expect: RA101
                   for hour in hours]
        doubler = lambda h: h * 2
        more = pool.map(doubler, hours)  # expect: RA101
    return futures, more
