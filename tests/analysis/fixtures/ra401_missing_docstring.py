# expect: RA401
# A public module whose first statement is code, not a docstring.
TOP_K_DEFAULT = 5


def top_k(values, k=TOP_K_DEFAULT):
    return sorted(values, reverse=True)[:k]
