"""Known-bad: legacy numpy global-RandomState API (RA002)."""
import numpy as np
import numpy.random as npr

noise = np.random.rand(24)  # expect: RA002
draw = np.random.randint(0, 10)  # expect: RA002
np.random.seed(7)  # expect: RA002
volumes = npr.normal(0.0, 1.0, size=8)  # expect: RA002

rng = np.random.default_rng(0xF10)  # fine: explicit generator, seeded
