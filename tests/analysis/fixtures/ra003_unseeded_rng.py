"""Known-bad: RNG constructed without an explicit seed (RA003)."""
import random
import numpy as np
from numpy.random import default_rng

rng_a = default_rng()  # expect: RA003
rng_b = np.random.default_rng()  # expect: RA003
rng_c = np.random.default_rng(None)  # expect: RA003
rng_d = random.Random()  # expect: RA003
legacy = np.random.RandomState()  # expect: RA003

rng_ok = default_rng(1234)  # fine
rng_kw = np.random.default_rng(seed=0xAC7)  # fine
