"""Known-bad: module-level stdlib random functions (RA001).

Each offending line carries a trailing ``# expect: <code>`` marker that
the fixture tests parse; the analyzer itself never sees the markers.
"""
import random
from random import shuffle

jitter = random.random()  # expect: RA001
pick = random.choice([1, 2, 3])  # expect: RA001
random.seed(42)  # expect: RA001
entropy = random.SystemRandom()  # expect: RA001


def scramble(items):
    shuffle(items)  # expect: RA001
    return items


seeded = random.Random(0x5A17)  # fine: explicit seed
