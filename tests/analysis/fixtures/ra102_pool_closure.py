"""Known-bad: closures handed across the process-pool boundary (RA102)."""
from concurrent.futures import ProcessPoolExecutor


def shard_worker(shard):
    return sum(shard)


def fan_out(shards, scale):
    def scaled_worker(shard):  # closes over `scale`
        return sum(shard) * scale

    with ProcessPoolExecutor() as executor:
        bad = [executor.submit(scaled_worker, s) for s in shards]  # expect: RA102
        good = [executor.submit(shard_worker, s) for s in shards]  # fine
    return bad, good
