"""Every violation here carries a matching noqa marker — must lint clean."""
import random
import numpy as np

jitter = random.random()  # repro: noqa[RA001]
noise = np.random.rand(3)  # repro: noqa[RA002]
rng = np.random.default_rng()  # repro: noqa[RA003]
both = random.Random()  # repro: noqa[RA001, RA003]


def accumulate(value, acc=[]):  # repro: noqa
    acc.append(value)
    return acc
