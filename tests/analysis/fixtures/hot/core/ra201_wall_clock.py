"""Known-bad: wall-clock reads on the hot path (RA201).

This fixture lives under a ``core/`` directory on purpose: RA201 only
applies inside the determinism-critical packages (pipeline, core,
traffic).
"""
import time
from datetime import datetime


def aggregate_hour(records):
    started = time.time()  # expect: RA201
    stamp = datetime.now()  # expect: RA201
    ticks = time.perf_counter()  # expect: RA201
    return records, started, stamp, ticks
