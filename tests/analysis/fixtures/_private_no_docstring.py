# No docstring on purpose: underscore-prefixed modules are private
# implementation detail and exempt from RA401.  Must lint clean.
_HELPER_CONSTANT = 42
