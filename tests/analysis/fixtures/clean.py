"""Disciplined code: nothing here should fire any rule."""
import random
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def shard_worker(shard):
    return sum(shard)


def build_rng(seed, hour):
    return np.random.default_rng((seed << 20) ^ hour)


def jittered(seed):
    rng = random.Random(seed ^ 0x9E3F)
    return rng.random()


def fan_out(shards):
    with ProcessPoolExecutor() as pool:
        results = [pool.submit(shard_worker, s) for s in shards]
    return [r.result() for r in results]


def collect(values, acc=None):
    if acc is None:
        acc = []
    acc.extend(values)
    return acc
