"""The ``--fix`` engine: application, idempotence, behavior preservation.

Two properties anchor everything here:

* **idempotence** — a second ``--fix`` run over an already-fixed tree
  produces zero edits (the fixed form no longer matches its detector);
  checked both on the checked-in fixture and, property-style, over
  randomly composed modules;
* **behavior preservation** — the fixture module computes the same
  values before and after fixing (order-unspecified results compared
  as sets), because every rewrite only *names* what the runtime
  already did on this platform.
"""

import importlib.util
import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import PROJECT_RULES, analyze_project
from repro.analysis.fixer import (Edit, Fix, _ensure_exactsum_import,
                                  apply_fixes, render_diffs)

FIXTURES = Path(__file__).parent / "fixtures" / "project"


def _copy_fixable(tmp_path):
    target = tmp_path / "fixable"
    shutil.copytree(FIXTURES / "fixable", target)
    return target


def _analyze(tree):
    return analyze_project([tree], cache_dir=None,
                           select=PROJECT_RULES, root=tree)


def _import_from(path, alias):
    spec = importlib.util.spec_from_file_location(alias, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- application --------------------------------------------------------------


def test_fix_run_makes_the_fixable_tree_clean(tmp_path):
    tree = _copy_fixable(tmp_path)
    report = _analyze(tree)
    assert report.violations and report.fixes
    results = apply_fixes(report.fixes, write=True)
    assert len(results) == 1 and results[0].changed
    fixed = _analyze(tree)
    assert fixed.violations == [] and fixed.fixes == []


def test_second_fix_run_produces_zero_edits(tmp_path):
    tree = _copy_fixable(tmp_path)
    apply_fixes(_analyze(tree).fixes, write=True)
    once = (tree / "mod.py").read_text()
    second = _analyze(tree)
    assert second.fixes == []
    assert apply_fixes(second.fixes, write=True) == []
    assert (tree / "mod.py").read_text() == once


def test_check_mode_writes_nothing(tmp_path):
    tree = _copy_fixable(tmp_path)
    original = (tree / "mod.py").read_text()
    report = _analyze(tree)
    results = apply_fixes(report.fixes, write=False)
    assert results and results[0].changed
    assert (tree / "mod.py").read_text() == original
    diff = render_diffs(results)
    assert diff.startswith("--- a/")
    assert "+++ b/" in diff and "dtype=np.float64" in diff


def test_fixes_rewrite_what_the_rules_flagged(tmp_path):
    tree = _copy_fixable(tmp_path)
    apply_fixes(_analyze(tree).fixes, write=True)
    fixed = (tree / "mod.py").read_text()
    assert "exact_total(distinct)" in fixed
    assert "from repro.util.exactsum import exact_total" in fixed
    assert "sorted({n.lower() for n in names})" in fixed
    assert "np.zeros(n, dtype=np.float64)" in fixed
    assert "dtype=np.int64" in fixed and "np.int_" not in fixed


def test_fixed_module_computes_the_same_values(tmp_path):
    tree = _copy_fixable(tmp_path)
    before = _import_from(tree / "mod.py", "fixable_before")
    values = [0.5, 1.25, 2.0, 0.5]
    names = ["Beta", "alpha", "Gamma"]
    mass = before.total_mass(values)
    name_set = set(before.ordered_names(names))
    grid = before.zero_grid(3)
    index = before.link_index([4, 1, 3])

    apply_fixes(_analyze(tree).fixes, write=True)
    after = _import_from(tree / "mod.py", "fixable_after")
    assert after.total_mass(values) == mass
    # order was unspecified before the fix; compare as sets, and the
    # fixed order must now be the sorted one
    assert set(after.ordered_names(names)) == name_set
    assert after.ordered_names(names) == sorted(name_set)
    assert np.array_equal(after.zero_grid(3), grid)
    assert after.zero_grid(3).dtype == np.float64
    assert np.array_equal(after.link_index([4, 1, 3]), index)
    assert after.link_index([4, 1, 3]).dtype == np.int64


def test_scandir_fix_sorts_by_name_and_still_runs(tmp_path):
    # DirEntry defines no `<`, so the wrap must sort by e.name — a bare
    # sorted(os.scandir(...)) would turn a working walk into TypeError
    tree = tmp_path / "walk"
    tree.mkdir()
    (tree / "pyproject.toml").write_text(
        '[tool.repro.determinism]\nwalk = ["mod.names"]\n')
    (tree / "mod.py").write_text(
        '"""Doc."""\n\nimport os\n\n\ndef names(path):\n'
        "    out = []\n"
        "    for entry in os.scandir(path):\n"
        "        out.append(entry.name)\n"
        "    return out\n")
    report = _analyze(tree)
    assert [f.code for f in report.fixes] == ["RA701"]
    apply_fixes(report.fixes, write=True)
    fixed = (tree / "mod.py").read_text()
    assert ("for entry in sorted(os.scandir(path), "
            "key=lambda e: e.name):") in fixed

    data = tmp_path / "data"
    data.mkdir()
    for name in ("b.txt", "a.txt", "c.txt"):
        (data / name).write_text("x")
    module = _import_from(tree / "mod.py", "scandir_fixed")
    assert module.names(data) == ["a.txt", "b.txt", "c.txt"]

    second = _analyze(tree)
    assert second.fixes == [] and second.violations == []


def test_sum_with_start_is_left_alone(tmp_path):
    # no recipe is attached, so --fix must not touch the file at all
    tree = tmp_path / "startarg"
    tree.mkdir()
    (tree / "pyproject.toml").write_text(
        '[tool.repro.determinism]\nc = ["mod.total"]\n')
    original = ('"""Doc."""\n\n\ndef total(xs, start):\n'
                "    return sum(set(xs), start)\n")
    (tree / "mod.py").write_text(original)
    report = _analyze(tree)
    assert [v.code for v in report.violations] == ["RA702"]
    assert report.fixes == []
    assert apply_fixes(report.fixes, write=True) == []
    assert (tree / "mod.py").read_text() == original


# -- the import inserter ------------------------------------------------------


def test_exactsum_import_goes_after_the_import_block():
    text = '"""Doc."""\n\nimport os\nimport sys\n\nx = 1\n'
    fixed = _ensure_exactsum_import(text)
    lines = fixed.splitlines()
    assert lines[4] == "from repro.util.exactsum import exact_total"


def test_exactsum_import_after_docstring_when_no_imports():
    text = '"""Doc."""\n\nx = 1\n'
    fixed = _ensure_exactsum_import(text)
    assert fixed.splitlines()[1] == \
        "from repro.util.exactsum import exact_total"


def test_exactsum_import_prepended_to_bare_module():
    fixed = _ensure_exactsum_import("x = 1\n")
    assert fixed.startswith("from repro.util.exactsum import exact_total")


def test_exactsum_import_is_not_duplicated():
    text = "from repro.util.exactsum import exact_total\nx = 1\n"
    assert _ensure_exactsum_import(text) == text


def test_future_imports_stay_first():
    text = "from __future__ import annotations\n\nx = 1\n"
    fixed = _ensure_exactsum_import(text)
    lines = fixed.splitlines()
    assert lines[0] == "from __future__ import annotations"
    assert "exact_total" in lines[1]


# -- the idempotence property -------------------------------------------------

_PYPROJECT = '[tool.repro.determinism]\nall = ["mod"]\n'

#: site templates composed into random modules; each is either clean or
#: carries exactly one auto-fixable site
_TEMPLATES = (
    "def f{i}(xs):\n    return sum(set(xs))\n",
    "def g{i}(xs):\n"
    "    out = []\n"
    "    for x in {{str(x) for x in xs}}:\n"
    "        out.append(x)\n"
    "    return out\n",
    "def h{i}(n):\n    return np.zeros(n)\n",
    "def k{i}(xs):\n    return np.array(xs, dtype=np.int_)\n",
    "def m{i}(xs):\n    return np.full(len(xs), 7)\n",
    "def s{i}(p):\n"
    "    out = []\n"
    "    for e in os.scandir(p):\n"
    "        out.append(e.name)\n"
    "    return out\n",
    "def c{i}(xs):\n    return sorted(set(xs))\n",  # already clean
)


def _compose(choices):
    parts = ['"""Doc."""\n\nimport os\n\nimport numpy as np\n\n']
    parts.extend(_TEMPLATES[c].format(i=i)
                 for i, c in enumerate(choices))
    return "\n".join(parts)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=len(_TEMPLATES) - 1),
                min_size=1, max_size=6))
def test_fix_is_idempotent_on_composed_modules(choices):
    with tempfile.TemporaryDirectory() as scratch:
        tree = Path(scratch)
        (tree / "pyproject.toml").write_text(_PYPROJECT)
        target = tree / "mod.py"
        target.write_text(_compose(choices))

        first = _analyze(tree)
        expected = sum(1 for c in choices if c != len(_TEMPLATES) - 1)
        assert len(first.fixes) == expected
        apply_fixes(first.fixes, write=True)
        fixed_text = target.read_text()

        second = _analyze(tree)
        assert second.fixes == []
        assert second.violations == []
        apply_fixes(second.fixes, write=True)
        assert target.read_text() == fixed_text


def test_overlapping_fixes_first_wins(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("value = compute(data)\n")
    wrap = (Edit(1, 16, 1, 16, "sorted("), Edit(1, 20, 1, 20, ")"))
    first = Fix(path=str(target), display="mod.py", code="RA701",
                line=1, col=17, description="wrap", edits=wrap)
    second = Fix(path=str(target), display="mod.py", code="RA701",
                 line=1, col=17, description="wrap again", edits=wrap)
    results = apply_fixes([first, second], write=True)
    assert len(results) == 1 and len(results[0].applied) == 1
    assert target.read_text() == "value = compute(sorted(data))\n"
