"""Engine-level tests: suppression semantics, selection, reporting, and
the acceptance invariant that the repo's own tree lints clean."""

from pathlib import Path

from repro.analysis import (RULES, analyze_paths, analyze_source,
                            iter_python_files, suppressed_lines)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


# -- noqa suppression --------------------------------------------------------

def test_bare_noqa_suppresses_everything_on_the_line():
    src = ('"""Doc."""\n'
           "import random\nx = random.random()  # repro: noqa\n")
    assert analyze_source(src, Path("mod.py")) == []


def test_coded_noqa_suppresses_only_listed_codes():
    src = ('"""Doc."""\n'
           "import random\n"
           "x = random.Random()  # repro: noqa[RA003]\n")
    # RA003 (unseeded) suppressed; nothing else fires on that line
    assert analyze_source(src, Path("mod.py")) == []
    src_wrong = ('"""Doc."""\n'
                 "import random\n"
                 "x = random.Random()  # repro: noqa[RA001]\n")
    violations = analyze_source(src_wrong, Path("mod.py"))
    assert [v.code for v in violations] == ["RA003"]


def test_suppressed_fixture_is_clean():
    path = FIXTURES / "suppressed.py"
    assert analyze_source(path.read_text(), path) == []


def test_suppressed_lines_parser():
    marks = suppressed_lines(
        "a = 1\n"
        "b = 2  # repro: noqa\n"
        "c = 3  # repro: noqa[RA001, RA301]\n")
    assert marks[2] is None
    assert marks[3] == frozenset({"RA001", "RA301"})
    assert 1 not in marks


# Multi-line statements: a suppression attaches to the *physical line
# the violation is reported at* — the lambda's own line for a wrapped
# dispatch call, the default value's line inside a decorated def's
# signature — never to the statement's opening line as a whole.

_WRAPPED_CALL = ('"""Doc."""\n'
                 "def go(pool):\n"
                 "    return pool.submit(\n"
                 "        lambda x: x,{noqa}\n"
                 "    )\n")

_DECORATED_DEF = ('"""Doc."""\n'
                  "import functools\n"
                  "\n"
                  "@functools.wraps(print){dec_noqa}\n"
                  "def f(\n"
                  "    x=[]{noqa},\n"
                  "):\n"
                  "    return x\n")


def test_wrapped_call_reports_and_suppresses_on_the_lambda_line():
    bare = _WRAPPED_CALL.format(noqa="")
    violations = analyze_source(bare, Path("mod.py"))
    assert [(v.line, v.code) for v in violations] == [(4, "RA101")]
    on_reported = _WRAPPED_CALL.format(noqa="  # repro: noqa[RA101]")
    assert analyze_source(on_reported, Path("mod.py")) == []


def test_noqa_on_a_wrapped_calls_opening_line_does_not_leak_down():
    opening = _WRAPPED_CALL.format(noqa="").replace(
        "pool.submit(", "pool.submit(  # repro: noqa[RA101]")
    violations = analyze_source(opening, Path("mod.py"))
    assert [(v.line, v.code) for v in violations] == [(4, "RA101")]


def test_decorated_def_reports_and_suppresses_on_the_default_line():
    bare = _DECORATED_DEF.format(dec_noqa="", noqa="")
    violations = analyze_source(bare, Path("mod.py"))
    assert [(v.line, v.code) for v in violations] == [(6, "RA301")]
    on_reported = _DECORATED_DEF.format(
        dec_noqa="", noqa="  # repro: noqa[RA301]")
    assert analyze_source(on_reported, Path("mod.py")) == []


def test_noqa_on_a_decorator_line_does_not_cover_the_signature():
    on_decorator = _DECORATED_DEF.format(
        dec_noqa="  # repro: noqa[RA301]", noqa="")
    violations = analyze_source(on_decorator, Path("mod.py"))
    assert [(v.line, v.code) for v in violations] == [(6, "RA301")]


# -- parse failures ----------------------------------------------------------

def test_syntax_error_reports_ra000():
    violations = analyze_source("def broken(:\n", Path("bad.py"))
    assert [v.code for v in violations] == ["RA000"]
    assert "RA000" in RULES


# -- path walking & selection ------------------------------------------------

def test_iter_python_files_is_sorted_and_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("")
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    found = list(iter_python_files([tmp_path]))
    assert found == [tmp_path / "a.py", tmp_path / "b.py"]


def test_select_restricts_report_to_listed_codes():
    report = analyze_paths([FIXTURES], select=frozenset({"RA301"}))
    assert report.violations
    assert {v.code for v in report.violations} == {"RA301"}


def test_report_json_shape():
    report = analyze_paths([FIXTURES / "ra001_global_random.py"])
    payload = report.to_json()
    assert payload["clean"] is False
    assert payload["files_scanned"] == 1
    assert payload["violation_count"] == len(payload["violations"])
    assert sum(payload["counts_by_code"].values()) == \
        payload["violation_count"]
    first = payload["violations"][0]
    assert {"path", "line", "col", "code", "rule", "message"} <= set(first)


# -- the acceptance invariant ------------------------------------------------

def test_repo_source_tree_lints_clean():
    """`repro lint` must pass on the repo's own src/ — the invariants the
    linter encodes are the ones the code actually satisfies."""
    report = analyze_paths([REPO_ROOT / "src"])
    assert report.files_scanned > 50
    assert report.clean, "\n".join(v.render() for v in report.violations)


def test_examples_and_benchmarks_lint_clean():
    report = analyze_paths([REPO_ROOT / "examples",
                            REPO_ROOT / "benchmarks"])
    assert report.clean, "\n".join(v.render() for v in report.violations)
