"""Property-based tests for outage scheduling and inference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pipeline import OutageInference, OutageParams, schedule_outages


class TestScheduleProperties:
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=90),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_schedule_invariants(self, n_links, days, seed):
        outages = schedule_outages(list(range(n_links)), days * 24,
                                   OutageParams(daily_hazard=0.1),
                                   seed=seed)
        by_link = {}
        for outage in outages:
            assert 0 <= outage.start_hour < outage.end_hour <= days * 24
            by_link.setdefault(outage.link_id, []).append(outage)
        for link_outages in by_link.values():
            link_outages.sort(key=lambda o: o.start_hour)
            for a, b in zip(link_outages, link_outages[1:]):
                assert a.end_hour <= b.start_hour


matrix_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 48)),
    elements=st.floats(min_value=0.0, max_value=1e9),
)


class TestInferenceProperties:
    @given(matrix_strategy)
    @settings(max_examples=60)
    def test_intervals_cover_down_hours_exactly(self, matrix):
        link_ids = list(range(matrix.shape[0]))
        inference = OutageInference(link_ids, matrix)
        covered = {
            (outage.link_id, hour)
            for outage in inference.intervals()
            for hour in range(outage.start_hour, outage.end_hour)
        }
        expected = set()
        for i, link in enumerate(link_ids):
            if matrix[i].sum() <= 0.0:
                continue  # never-active links are not in outage
            for hour in range(matrix.shape[1]):
                if matrix[i, hour] <= 0.0:
                    expected.add((link, hour))
        assert covered == expected

    @given(matrix_strategy)
    @settings(max_examples=40)
    def test_duration_filters_partition(self, matrix):
        inference = OutageInference(list(range(matrix.shape[0])), matrix)
        all_intervals = set(inference.intervals())
        short = set(inference.intervals(min_hours=1, max_hours=3))
        long = set(inference.intervals(min_hours=4))
        assert short | long == all_intervals
        assert not (short & long)

    @given(matrix_strategy)
    @settings(max_examples=40)
    def test_down_links_consistent_with_is_down(self, matrix):
        link_ids = list(range(matrix.shape[0]))
        inference = OutageInference(link_ids, matrix)
        for hour in range(0, matrix.shape[1], 7):
            down = inference.down_links_at(hour)
            for i, link in enumerate(link_ids):
                assert (link in down) == inference.is_down(i, hour)
