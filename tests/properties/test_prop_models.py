"""Property-based tests on model invariants.

These encode the §3 contract every ingress model must satisfy: rankings
sorted by score, availability priors respected, k honoured, byte-weighted
scores normalised, and the historical model's exact correspondence to the
empirical distribution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FEATURES_A,
    FEATURES_AP,
    HistoricalModel,
    NaiveBayesModel,
    SequentialEnsemble,
)
from repro.pipeline import FlowContext

# a compact universe keeps collision (same-tuple) cases frequent
observations = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),      # asn
        st.integers(min_value=0, max_value=5),      # prefix
        st.integers(min_value=0, max_value=2),      # loc
        st.integers(min_value=0, max_value=1),      # region
        st.integers(min_value=0, max_value=1),      # service
        st.integers(min_value=0, max_value=9),      # link
        st.floats(min_value=0.001, max_value=1e9),  # bytes
    ),
    min_size=1, max_size=60,
)

queries = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=1),
)

unavailable_sets = st.frozensets(st.integers(min_value=0, max_value=9),
                                 max_size=5)
ks = st.integers(min_value=1, max_value=6)


def train(model, obs):
    for asn, prefix, loc, region, service, link, bytes_ in obs:
        model.observe(FlowContext(asn, prefix, loc, region, service),
                      link, bytes_)
    model.finalize()
    return model


class TestModelContract:
    @given(observations, queries, ks, unavailable_sets)
    @settings(max_examples=60)
    def test_historical_contract(self, obs, query, k, unavailable):
        model = train(HistoricalModel(FEATURES_AP), obs)
        preds = model.predict(FlowContext(*query), k, unavailable)
        assert len(preds) <= k
        links = [p.link_id for p in preds]
        assert len(links) == len(set(links))
        assert not (set(links) & unavailable)
        scores = [p.score for p in preds]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in scores)

    @given(observations, queries, ks, unavailable_sets)
    @settings(max_examples=40)
    def test_naive_bayes_contract(self, obs, query, k, unavailable):
        model = train(NaiveBayesModel(FEATURES_A), obs)
        preds = model.predict(FlowContext(*query), k, unavailable)
        assert len(preds) <= k
        links = [p.link_id for p in preds]
        assert len(links) == len(set(links))
        assert not (set(links) & unavailable)
        scores = [p.score for p in preds]
        assert scores == sorted(scores, reverse=True)

    @given(observations, queries, ks)
    @settings(max_examples=40)
    def test_ensemble_answers_iff_some_component_does(self, obs, query, k):
        ap = train(HistoricalModel(FEATURES_AP), obs)
        a = train(HistoricalModel(FEATURES_A), obs)
        ensemble = SequentialEnsemble([ap, a])
        context = FlowContext(*query)
        preds = ensemble.predict(context, k)
        component_any = ap.has_prediction(context) or a.has_prediction(context)
        assert bool(preds) == component_any


class TestHistoricalEmpiricalDistribution:
    @given(observations)
    @settings(max_examples=60)
    def test_scores_match_byte_fractions(self, obs):
        model = train(HistoricalModel(FEATURES_AP), obs)
        # recompute the empirical distribution independently
        table = {}
        for asn, prefix, loc, region, service, link, bytes_ in obs:
            key = (asn, prefix, region, service)
            table.setdefault(key, {}).setdefault(link, 0.0)
            table[key][link] += bytes_
        for (asn, prefix, region, service), by_link in table.items():
            context = FlowContext(asn, prefix, 0, region, service)
            total = sum(by_link.values())
            preds = model.predict(context, k=len(by_link))
            assert {p.link_id for p in preds} == set(by_link)
            for p in preds:
                assert abs(p.score - by_link[p.link_id] / total) < 1e-9

    @given(observations, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_prediction_prefix_consistency(self, obs, k):
        """predict(k) is always a prefix of predict(k+1)."""
        model = train(HistoricalModel(FEATURES_AP), obs)
        for asn, prefix, loc, region, service, _l, _b in obs[:10]:
            context = FlowContext(asn, prefix, loc, region, service)
            small = model.predict(context, k)
            large = model.predict(context, k + 1)
            assert large[:len(small)] == small
