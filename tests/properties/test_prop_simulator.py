"""Property-based tests on ingress-simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import AdvertisementState
from repro.experiments import Scenario, ScenarioParams


@pytest.fixture(scope="module")
def world():
    scenario = Scenario(ScenarioParams.small(seed=13, horizon_days=7))
    return scenario


flow_indices = st.integers(min_value=0, max_value=899)
link_subsets = st.lists(st.integers(min_value=0, max_value=140),
                        max_size=6, unique=True)
days = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


class TestResolutionInvariants:
    @given(flow_indices, days)
    @settings(max_examples=60, deadline=None)
    def test_shares_well_formed(self, world, idx, day):
        scenario = world
        flow = scenario.traffic.flows[idx % len(scenario.traffic.flows)]
        state = AdvertisementState(scenario.wan)
        shares = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state, day)
        if shares:
            total = sum(f for _l, f in shares)
            assert total == pytest.approx(1.0)
            links = [l for l, _f in shares]
            assert len(links) == len(set(links))
            assert all(scenario.wan.has_link(l) for l in links)
            fracs = [f for _l, f in shares]
            assert fracs == sorted(fracs, reverse=True)

    @given(flow_indices, link_subsets)
    @settings(max_examples=60, deadline=None)
    def test_removed_links_never_appear(self, world, idx, removed_links):
        scenario = world
        flow = scenario.traffic.flows[idx % len(scenario.traffic.flows)]
        state = AdvertisementState(scenario.wan)
        valid = [l for l in removed_links if scenario.wan.has_link(l)]
        for link in valid:
            state.set_link_down(link)
        shares = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        assert not ({l for l, _f in shares} & set(valid))

    @given(flow_indices, link_subsets)
    @settings(max_examples=40, deadline=None)
    def test_outage_recovery_restores_baseline(self, world, idx,
                                               removed_links):
        """Link up-down-up returns exactly the original shares — the
        determinism that makes seen outages learnable."""
        scenario = world
        flow = scenario.traffic.flows[idx % len(scenario.traffic.flows)]
        state = AdvertisementState(scenario.wan)
        base = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        valid = [l for l in removed_links if scenario.wan.has_link(l)]
        for link in valid:
            state.set_link_down(link)
        scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        for link in valid:
            state.set_link_up(link)
        after = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        assert after == base

    @given(flow_indices)
    @settings(max_examples=30, deadline=None)
    def test_shortcut_equals_full_resolution(self, world, idx):
        """The affected-flow shortcut must be semantically invisible:
        resolving with a removal present equals a fresh full resolve."""
        scenario = world
        flow = scenario.traffic.flows[idx % len(scenario.traffic.flows)]
        state = AdvertisementState(scenario.wan)
        base = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        if not base:
            return
        primary = base[0][0]
        state.set_link_down(primary)
        removed = state.removal_key(flow.dest_prefix_id)
        via_shortcut = scenario.simulator.resolve_shares(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, state)
        direct = scenario.simulator._resolve(
            flow.src_asn, flow.src_metro, flow.src_prefix_id,
            flow.dest_prefix_id, removed, False, False)
        assert via_shortcut == direct
