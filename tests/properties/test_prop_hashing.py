"""Property-based tests for the deterministic hashing utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import geometric_day, mix64, pick, rotation, unit

ints = st.integers(min_value=0, max_value=2**62)
int_lists = st.lists(ints, min_size=1, max_size=8)


class TestMix64Properties:
    @given(int_lists, ints)
    def test_deterministic(self, values, seed):
        assert mix64(*values, seed=seed) == mix64(*values, seed=seed)

    @given(int_lists)
    def test_range(self, values):
        assert 0 <= mix64(*values) < 2**64

    @given(int_lists, ints)
    def test_appending_changes_hash(self, values, extra):
        # not strictly guaranteed, but collisions at this rate would be a
        # bug; hypothesis will find systematic failures
        assert mix64(*values) != mix64(*values, extra) or extra == 0


class TestUnitProperties:
    @given(int_lists, ints)
    def test_in_unit_interval(self, values, seed):
        u = unit(*values, seed=seed)
        assert 0.0 <= u < 1.0


class TestPickProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=20), ints)
    def test_picks_member(self, items, key):
        assert pick(items, key) in items

    @given(st.lists(st.integers(), min_size=1, max_size=20), ints)
    def test_stable(self, items, key):
        assert pick(items, key) == pick(items, key)


class TestRotationProperties:
    @given(st.integers(min_value=1, max_value=100), int_lists)
    def test_in_range(self, n, values):
        assert 0 <= rotation(n, *values) < n


class TestGeometricDayProperties:
    @given(st.floats(min_value=0.001, max_value=0.99), int_lists)
    def test_nonnegative_and_capped(self, p, values):
        day = geometric_day(p, *values, cap=1000)
        assert 0 <= day <= 1000

    @given(int_lists)
    @settings(max_examples=30)
    def test_higher_probability_earlier_on_average(self, values):
        early = sum(geometric_day(0.5, *values, i) for i in range(30))
        late = sum(geometric_day(0.01, *values, i) for i in range(30))
        assert early <= late
