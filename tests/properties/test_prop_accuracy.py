"""Property-based tests on the accuracy metric (§5.1.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FEATURES_AP,
    HistoricalModel,
    OracleModel,
    evaluate_accuracy,
    matched_bytes,
    volume_matched_bytes,
    Prediction,
)
from repro.pipeline import FlowContext


actuals_strategy = st.dictionaries(
    keys=st.integers(min_value=0, max_value=8).map(
        lambda p: FlowContext(1, p, 0, 0, 0)),
    values=st.dictionaries(
        keys=st.integers(min_value=0, max_value=9),
        values=st.floats(min_value=0.01, max_value=1e9),
        min_size=1, max_size=5),
    min_size=1, max_size=8,
)


def oracle_for(actuals):
    oracle = OracleModel(FEATURES_AP)
    for context, by_link in actuals.items():
        for link, b in by_link.items():
            oracle.observe(context, link, b)
    oracle.finalize()
    return oracle


class TestMetricProperties:
    @given(actuals_strategy, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60)
    def test_bounded(self, actuals, k):
        oracle = oracle_for(actuals)
        acc = evaluate_accuracy(actuals, oracle, k)
        assert 0.0 <= acc <= 1.0 + 1e-9

    @given(actuals_strategy)
    @settings(max_examples=60)
    def test_monotone_in_k(self, actuals):
        oracle = oracle_for(actuals)
        accs = [evaluate_accuracy(actuals, oracle, k) for k in (1, 2, 3, 20)]
        assert accs == sorted(accs)

    @given(actuals_strategy)
    @settings(max_examples=60)
    def test_unrestricted_oracle_perfect(self, actuals):
        oracle = oracle_for(actuals)
        assert abs(evaluate_accuracy(actuals, oracle, 10**6) - 1.0) < 1e-9

    @given(actuals_strategy)
    @settings(max_examples=60)
    def test_strict_never_exceeds_loose(self, actuals):
        oracle = oracle_for(actuals)
        for k in (1, 3):
            strict = evaluate_accuracy(actuals, oracle, k,
                                       strict_volumes=True)
            loose = evaluate_accuracy(actuals, oracle, k)
            assert strict <= loose + 1e-9

    @given(actuals_strategy)
    @settings(max_examples=40)
    def test_untrained_model_scores_zero(self, actuals):
        empty = HistoricalModel(FEATURES_AP)
        assert evaluate_accuracy(actuals, empty, 3) == 0.0


class TestMatchers:
    by_link = st.dictionaries(st.integers(0, 9),
                              st.floats(min_value=0.0, max_value=1e6),
                              min_size=1, max_size=6)
    preds = st.lists(
        st.tuples(st.integers(0, 9), st.floats(min_value=0.0, max_value=1.0)),
        max_size=4).map(lambda ps: [Prediction(l, s) for l, s in ps])

    @given(by_link, preds)
    @settings(max_examples=80)
    def test_matched_bounded_by_total(self, by_link, preds):
        # dedupe predicted links (the model contract guarantees this)
        seen = set()
        unique = [p for p in preds
                  if not (p.link_id in seen or seen.add(p.link_id))]
        total = sum(by_link.values())
        assert matched_bytes(by_link, unique) <= total + 1e-6
        assert volume_matched_bytes(by_link, unique) <= total + 1e-6

    @given(by_link, preds)
    @settings(max_examples=80)
    def test_volume_variant_dominated(self, by_link, preds):
        seen = set()
        unique = [p for p in preds
                  if not (p.link_id in seen or seen.add(p.link_id))]
        assert (volume_matched_bytes(by_link, unique)
                <= matched_bytes(by_link, unique) + 1e-6)
