"""Property-based round-trip tests for model persistence."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FEATURES_A,
    FEATURES_AP,
    HistoricalModel,
    NaiveBayesModel,
    SequentialEnsemble,
    model_from_dict,
    model_to_dict,
)
from repro.pipeline import FlowContext

observations = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.001, max_value=1e9),
    ),
    min_size=1, max_size=40,
)

queries = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=1, max_size=10,
)


def train(model, obs):
    for asn, prefix, loc, region, service, link, bytes_ in obs:
        model.observe(FlowContext(asn, prefix, loc, region, service),
                      link, bytes_)
    model.finalize()
    return model


def same_predictions(a, b, query_tuples):
    for q in query_tuples:
        context = FlowContext(*q)
        for k in (1, 3):
            if a.predict(context, k) != b.predict(context, k):
                return False
    return True


class TestRoundtripProperties:
    @given(observations, queries)
    @settings(max_examples=40)
    def test_historical_roundtrip(self, obs, qs):
        model = train(HistoricalModel(FEATURES_AP), obs)
        clone = model_from_dict(
            json.loads(json.dumps(model_to_dict(model))))
        assert same_predictions(model, clone, qs)

    @given(observations, queries)
    @settings(max_examples=25)
    def test_naive_bayes_roundtrip(self, obs, qs):
        model = train(NaiveBayesModel(FEATURES_A), obs)
        clone = model_from_dict(
            json.loads(json.dumps(model_to_dict(model))))
        assert same_predictions(model, clone, qs)

    @given(observations, queries)
    @settings(max_examples=25)
    def test_ensemble_roundtrip(self, obs, qs):
        ensemble = SequentialEnsemble([
            train(HistoricalModel(FEATURES_AP), obs),
            train(HistoricalModel(FEATURES_A), obs),
        ])
        clone = model_from_dict(
            json.loads(json.dumps(model_to_dict(ensemble))))
        assert same_predictions(ensemble, clone, qs)
