"""Tests for the de-peering analysis (§8)."""

import pytest

from repro.cms import DepeeringAnalyzer
from repro.core import FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)

GBPS_HOUR = 1e9 / 8.0 * 3600.0


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def world():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 10.0),   # big peer
        PeeringLink(1, 100, "nyc", "nyc-er1", 10.0),
        PeeringLink(2, 200, "iad", "iad-er2", 1.0),    # small peer
        PeeringLink(3, 300, "iad", "iad-er3", 1.0),    # small, no alt
    ]
    wan = CloudWAN(8075, links, [Region("r", "iad")],
                   [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)
    model = HistoricalModel(FEATURES_AP)
    # peer 200's flows have history on peer 100's links too
    model.observe(ctx(1), 2, 100.0)
    model.observe(ctx(1), 0, 20.0)
    # peer 300's flow has never been seen anywhere else
    model.observe(ctx(2), 3, 100.0)
    # background flows on peer 100
    model.observe(ctx(3), 0, 500.0)
    model.observe(ctx(3), 1, 100.0)
    return wan, model


def entries(volume_small=0.1):
    return [
        (0, ctx(3), 5.0 * GBPS_HOUR),
        (1, ctx(3), 1.0 * GBPS_HOUR),
        (2, ctx(1), volume_small * GBPS_HOUR),
        (3, ctx(2), volume_small * GBPS_HOUR),
    ]


class TestAssessment:
    def test_safe_small_peer(self, world):
        wan, model = world
        analyzer = DepeeringAnalyzer(wan, model)
        assessment = analyzer.assess(200, entries())
        assert assessment.safe
        assert assessment.n_links == 1
        assert assessment.carried_fraction < 0.05
        spill_links = [l for l, _b in assessment.predicted_spill]
        assert 0 in spill_links  # shifts onto peer 100's link

    def test_unplaceable_traffic_blocks(self, world):
        wan, model = world
        analyzer = DepeeringAnalyzer(wan, model)
        assessment = analyzer.assess(300, entries())
        assert assessment.unplaceable_bytes > 0
        assert not assessment.safe

    def test_overload_blocks(self, world):
        wan, model = world
        analyzer = DepeeringAnalyzer(wan, model, safety_threshold=0.85)
        # crank the small peer's traffic so the spill overloads link 0
        heavy = [
            (0, ctx(3), 9.0 * GBPS_HOUR),
            (2, ctx(1), 3.0 * GBPS_HOUR),
        ]
        assessment = analyzer.assess(200, heavy)
        assert assessment.overloaded_links == (0,)
        assert not assessment.safe

    def test_unknown_peer_rejected(self, world):
        wan, model = world
        with pytest.raises(KeyError):
            DepeeringAnalyzer(wan, model).assess(999, entries())


class TestRanking:
    def test_rank_candidates_filters_and_sorts(self, world):
        wan, model = world
        analyzer = DepeeringAnalyzer(wan, model)
        candidates = analyzer.rank_candidates(entries(),
                                              max_carried_fraction=0.05)
        asns = [a.peer_asn for a in candidates]
        assert 200 in asns          # safe, low-value
        assert 300 not in asns      # traffic would strand
        assert 100 not in asns      # carries too much
        carried = [a.carried_bytes for a in candidates]
        assert carried == sorted(carried)
