"""Tests for the Algorithm 1 risk analyzer."""

import pytest

from repro.cms import RiskAnalyzer
from repro.core import FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)

GBPS_HOUR = 1e9 / 8.0 * 3600.0


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def world():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 1.0),
        PeeringLink(1, 100, "iad", "iad-er2", 1.0),
        PeeringLink(2, 200, "atl", "atl-er1", 10.0),
    ]
    wan = CloudWAN(8075, links, [Region("r", "iad")],
                   [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)
    model = HistoricalModel(FEATURES_AP)
    # flows historically on link 0 with link 1 as the alternative
    for i in range(4):
        model.observe(ctx(i), 0, 100.0)
        model.observe(ctx(i), 1, 10.0)
    return wan, model


def hour_entries(volume_gbps, link=0, n=4):
    per = volume_gbps * GBPS_HOUR / n
    return [(link, ctx(i), per) for i in range(n)]


class TestRiskAnalyzer:
    def test_detects_at_risk_pair(self, world):
        wan, model = world
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        hours = [(h, hour_entries(0.8)) for h in range(5)]
        findings = analyzer.analyze(hours)
        assert findings
        top = findings[0]
        assert top.link_id == 1          # link 1 is at risk...
        assert top.affecting_link_id == 0  # ...if link 0 fails
        assert top.predicted_extra_high_hours == 5
        assert top.typical_high_hours == 0

    def test_no_finding_when_load_low(self, world):
        wan, model = world
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        hours = [(h, hour_entries(0.3)) for h in range(5)]
        assert analyzer.analyze(hours) == []

    def test_already_high_links_not_reported(self, world):
        wan, model = world
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        # link 1 is ALREADY above threshold every hour: the what-if adds
        # nothing new, so it is excluded (the paper reports *extra* hours)
        hours = [(h, hour_entries(0.8, link=0) + hour_entries(0.9, link=1))
                 for h in range(3)]
        findings = analyzer.analyze(hours)
        assert all(f.link_id != 1 for f in findings)

    def test_min_extra_hours_filter(self, world):
        wan, model = world
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        hours = [(0, hour_entries(0.8))]
        assert analyzer.analyze(hours, min_extra_hours=2) == []
        assert analyzer.analyze(hours, min_extra_hours=1)

    def test_sorted_by_extra_hours(self, world):
        wan, model = world
        # add a second flow family on link 2 that would shift to link 0
        model.observe(ctx(100), 2, 100.0)
        model.observe(ctx(100), 0, 10.0)
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        hours = [
            (h, hour_entries(0.8) + [(2, ctx(100), 0.8 * GBPS_HOUR)])
            for h in range(4)
        ]
        findings = analyzer.analyze(hours)
        extras = [f.predicted_extra_high_hours for f in findings]
        assert extras == sorted(extras, reverse=True)

    def test_finding_metadata(self, world):
        wan, model = world
        analyzer = RiskAnalyzer(wan, model, threshold=0.7)
        findings = analyzer.analyze([(0, hour_entries(0.8))])
        top = findings[0]
        assert top.peer_asn == 100
        assert top.capacity_gbps == 1.0
        assert top.affecting_peer_asn == 100
