"""Tests for the utilization monitor."""

import pytest

from repro.cms import CongestionEvent, UtilizationMonitor, bytes_to_utilization


GBPS_HOUR_BYTES = 1e9 / 8.0 * 3600.0  # bytes to fill a 1G link for an hour


class TestUtilization:
    def test_full_link(self):
        assert bytes_to_utilization(GBPS_HOUR_BYTES, 1.0) == pytest.approx(1.0)

    def test_scaling_with_capacity(self):
        assert bytes_to_utilization(GBPS_HOUR_BYTES, 10.0) == pytest.approx(0.1)

    def test_custom_period(self):
        minute_bytes = 1e9 / 8.0 * 60.0
        assert bytes_to_utilization(minute_bytes, 1.0,
                                    period_seconds=60.0) == pytest.approx(1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            bytes_to_utilization(1.0, 0.0)


class TestMonitor:
    def test_event_fires_over_threshold(self):
        monitor = UtilizationMonitor({1: 1.0}, threshold=0.85)
        events = monitor.observe(0, {1: GBPS_HOUR_BYTES * 0.9})
        assert events == [CongestionEvent(1, 0, pytest.approx(0.9))]

    def test_no_event_under_threshold(self):
        monitor = UtilizationMonitor({1: 1.0}, threshold=0.85)
        assert monitor.observe(0, {1: GBPS_HOUR_BYTES * 0.8}) == []

    def test_sustain_requirement(self):
        """The paper's 4-minute sustain window, with minute samples."""
        monitor = UtilizationMonitor({1: 1.0}, threshold=0.85,
                                     sustain_samples=4,
                                     period_seconds=60.0)
        minute = 1e9 / 8.0 * 60.0
        hot = {1: minute * 0.9}
        assert monitor.observe(0, hot) == []
        assert monitor.observe(1, hot) == []
        assert monitor.observe(2, hot) == []
        events = monitor.observe(3, hot)
        assert len(events) == 1

    def test_streak_resets_on_calm_sample(self):
        monitor = UtilizationMonitor({1: 1.0}, threshold=0.85,
                                     sustain_samples=2)
        hot = {1: GBPS_HOUR_BYTES * 0.9}
        assert monitor.observe(0, hot) == []
        assert monitor.observe(1, {1: 0.0}) == []
        assert monitor.observe(2, hot) == []
        assert len(monitor.observe(3, hot)) == 1

    def test_missing_link_treated_as_zero(self):
        monitor = UtilizationMonitor({1: 1.0, 2: 1.0}, sustain_samples=1)
        events = monitor.observe(0, {1: GBPS_HOUR_BYTES})
        assert [e.link_id for e in events] == [1]

    def test_multiple_links_fire_together(self):
        monitor = UtilizationMonitor({1: 1.0, 2: 1.0}, sustain_samples=1)
        hot = {1: GBPS_HOUR_BYTES, 2: GBPS_HOUR_BYTES}
        assert {e.link_id for e in monitor.observe(0, hot)} == {1, 2}

    def test_reset(self):
        monitor = UtilizationMonitor({1: 1.0}, sustain_samples=2)
        hot = {1: GBPS_HOUR_BYTES * 0.9}
        monitor.observe(0, hot)
        monitor.reset(1)
        assert monitor.observe(1, hot) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UtilizationMonitor({1: 1.0}, threshold=0.0)
        with pytest.raises(ValueError):
            UtilizationMonitor({1: 1.0}, sustain_samples=0)
