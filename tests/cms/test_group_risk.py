"""Tests for router/site-level risk analysis (Appendix C extension)."""

import pytest

from repro.cms import GroupRiskAnalyzer
from repro.core import FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)

GBPS_HOUR = 1e9 / 8.0 * 3600.0


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def world():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 1.0),  # same router pair
        PeeringLink(1, 100, "iad", "iad-er1", 1.0),
        PeeringLink(2, 100, "iad", "iad-er2", 1.0),  # other router
        PeeringLink(3, 100, "nyc", "nyc-er1", 1.0),  # other metro
    ]
    wan = CloudWAN(8075, links, [Region("r", "iad")],
                   [DestPrefix(0, "100.64.0.0/24", "r", "web")], metros)
    model = HistoricalModel(FEATURES_AP)
    # two flows on the iad-er1 pair, with iad-er2 as their alternative
    for p, link in ((1, 0), (2, 1)):
        model.observe(ctx(p), link, 100.0)
        model.observe(ctx(p), 2, 20.0)
    return wan, model


def hour(volume=0.6):
    return [(0, ctx(1), volume * GBPS_HOUR), (1, ctx(2), volume * GBPS_HOUR)]


class TestGrouping:
    def test_group_of(self, world):
        wan, model = world
        analyzer = GroupRiskAnalyzer(wan, model)
        assert analyzer.group_of(0, "router") == "iad-er1"
        assert analyzer.group_of(0, "metro") == "iad"
        assert analyzer.group_of(0, "peer") == "AS100"
        with pytest.raises(ValueError):
            analyzer.group_of(0, "continent")


class TestRouterOutage:
    def test_router_failure_overloads_survivor(self, world):
        wan, model = world
        analyzer = GroupRiskAnalyzer(wan, model, threshold=0.7)
        findings = analyzer.analyze([(h, hour()) for h in range(3)],
                                    group_by="router")
        assert findings
        top = findings[0]
        # both er1 links fail together -> their combined 1.2G lands on
        # link 2, far over 70% of its 1G capacity
        assert top.link_id == 2
        assert top.affecting_group == "iad-er1"
        assert top.predicted_extra_high_hours == 3

    def test_single_link_outage_would_not_trip(self, world):
        """The contrast that makes group analysis worthwhile: each link
        alone shifts 0.6G (< 0.7 threshold), only the joint router
        failure overloads the survivor."""
        from repro.cms import RiskAnalyzer

        wan, model = world
        single = RiskAnalyzer(wan, model, threshold=0.7)
        findings = single.analyze([(h, hour()) for h in range(3)])
        assert all(f.link_id != 2 for f in findings)

    def test_metro_outage_pushes_out_of_metro(self, world):
        wan, model = world
        # give the flows a nyc alternative so a metro-wide failure has
        # somewhere to go
        model.observe(ctx(1), 3, 10.0)
        model.observe(ctx(2), 3, 10.0)
        analyzer = GroupRiskAnalyzer(wan, model, threshold=0.7)
        findings = analyzer.analyze([(h, hour(0.8)) for h in range(2)],
                                    group_by="metro")
        assert findings
        assert all(f.affecting_group == "iad" for f in findings)
        assert {f.link_id for f in findings} == {3}

    def test_min_extra_hours(self, world):
        wan, model = world
        analyzer = GroupRiskAnalyzer(wan, model, threshold=0.7)
        findings = analyzer.analyze([(0, hour())], group_by="router",
                                    min_extra_hours=2)
        assert findings == []
