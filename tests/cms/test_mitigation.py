"""Tests for the congestion mitigation system."""

import pytest

from repro.bgp import AdvertisementState
from repro.cms import CMSConfig, CongestionMitigationSystem, TrafficEntry
from repro.core import FEATURES_AP, HistoricalModel
from repro.pipeline import FlowContext
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)

GBPS_HOUR = 1e9 / 8.0 * 3600.0


def ctx(prefix):
    return FlowContext(1, prefix, 0, 0, 0)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [
        PeeringLink(0, 100, "iad", "iad-er1", 1.0),
        PeeringLink(1, 100, "iad", "iad-er2", 1.0),
        PeeringLink(2, 100, "atl", "atl-er1", 1.0),
        PeeringLink(3, 100, "chi", "chi-er1", 1.0),
    ]
    dests = [DestPrefix(0, "100.64.0.0/24", "r", "web"),
             DestPrefix(1, "100.64.1.0/24", "r", "web")]
    return CloudWAN(8075, links, [Region("r", "iad")], dests, metros)


def entries_at(link, volume_gbps, prefix_id=0, n=4):
    per = volume_gbps * GBPS_HOUR / n
    return [TrafficEntry(link, prefix_id, ctx(100 + i), per)
            for i in range(n)]


class TestBlindCMS:
    def test_withdraws_on_congestion(self, wan):
        cms = CongestionMitigationSystem(wan, CMSConfig(coordinated=False))
        state = AdvertisementState(wan)
        actions = cms.handle_sample(0, state, entries_at(0, 0.9))
        kinds = [a.kind for a in actions]
        assert "withdraw" in kinds
        assert not state.is_available(0, 0)

    def test_no_action_below_threshold(self, wan):
        cms = CongestionMitigationSystem(wan)
        state = AdvertisementState(wan)
        assert cms.handle_sample(0, state, entries_at(0, 0.5)) == []

    def test_fewest_prefixes_largest_first(self, wan):
        cms = CongestionMitigationSystem(wan, CMSConfig(coordinated=False))
        state = AdvertisementState(wan)
        entries = entries_at(0, 0.7, prefix_id=0) + entries_at(
            0, 0.25, prefix_id=1)
        cms.handle_sample(0, state, entries)
        # withdrawing the big prefix alone brings 0.95 under target 0.70
        assert not state.is_available(0, 0)
        assert state.is_available(1, 0)

    def test_withdrawal_budget(self, wan):
        config = CMSConfig(coordinated=False, max_withdrawals_per_event=1,
                           target=0.1)
        cms = CongestionMitigationSystem(wan, config)
        state = AdvertisementState(wan)
        entries = entries_at(0, 0.5, prefix_id=0) + entries_at(
            0, 0.45, prefix_id=1)
        cms.handle_sample(0, state, entries)
        withdrawn = [p for p in (0, 1) if not state.is_available(p, 0)]
        assert len(withdrawn) == 1


class TestTipsyGuidedCMS:
    def _predictor(self, target_links):
        model = HistoricalModel(FEATURES_AP)
        for i in range(4):
            model.observe(ctx(100 + i), 0, 100.0)
            for target in target_links:
                model.observe(ctx(100 + i), target, 10.0)
        return model

    def test_unsafe_withdrawal_skipped(self, wan):
        # prediction says everything lands on link 1, which is already hot
        cms = CongestionMitigationSystem(
            wan, CMSConfig(coordinated=False),
            predictor=self._predictor(target_links=(1,)))
        state = AdvertisementState(wan)
        entries = entries_at(0, 0.9, prefix_id=0) + entries_at(
            1, 0.8, prefix_id=1)
        actions = cms.handle_sample(0, state, entries)
        kinds = [a.kind for a in actions]
        assert "skip-unsafe" in kinds
        assert state.is_available(0, 0)

    def test_safe_withdrawal_proceeds(self, wan):
        # predicted targets (links 2, 3) are idle and split the spill
        cms = CongestionMitigationSystem(
            wan, CMSConfig(coordinated=False),
            predictor=self._predictor(target_links=(2, 3)))
        state = AdvertisementState(wan)
        actions = cms.handle_sample(0, state, entries_at(0, 0.9))
        assert any(a.kind == "withdraw" for a in actions)
        assert not state.is_available(0, 0)

    def test_predicted_spill_recorded(self, wan):
        cms = CongestionMitigationSystem(
            wan, CMSConfig(coordinated=False),
            predictor=self._predictor(target_links=(2, 3)))
        state = AdvertisementState(wan)
        actions = cms.handle_sample(0, state, entries_at(0, 0.9))
        withdraw = next(a for a in actions if a.kind == "withdraw")
        spilled_links = [l for l, _b in withdraw.predicted_spill]
        assert 2 in spilled_links


class TestReannouncement:
    def test_reannounce_after_volume_drops(self, wan):
        cms = CongestionMitigationSystem(wan, CMSConfig(coordinated=False))
        state = AdvertisementState(wan)
        cms.handle_sample(0, state, entries_at(0, 0.9))
        assert cms.pending_reannouncements
        # next sample: the prefix's demand collapsed
        actions = cms.handle_sample(1, state, entries_at(1, 0.1))
        assert any(a.kind == "reannounce" for a in actions)
        assert state.is_available(0, 0)
        assert not cms.pending_reannouncements

    def test_no_reannounce_while_volume_high(self, wan):
        cms = CongestionMitigationSystem(wan, CMSConfig(coordinated=False))
        state = AdvertisementState(wan)
        cms.handle_sample(0, state, entries_at(0, 0.9))
        # demand persists (shifted to link 1)
        actions = cms.handle_sample(1, state, entries_at(1, 0.82))
        assert not any(a.kind == "reannounce" for a in actions)
        assert not state.is_available(0, 0)


class TestCoordinated:
    def test_coordinated_plan_grows_until_safe(self, wan):
        # history: traffic on link 0 primarily, link 1 secondary; links
        # 2, 3 known with small mass — the planner should discover that
        # withdrawing at 0 pushes to 1 (unsafe) and settle on {0, 1}
        model = HistoricalModel(FEATURES_AP)
        for i in range(4):
            model.observe(ctx(100 + i), 0, 100.0)
            model.observe(ctx(100 + i), 1, 10.0)
            model.observe(ctx(100 + i), 2, 1.0)
            model.observe(ctx(100 + i), 3, 1.0)
        cms = CongestionMitigationSystem(
            wan, CMSConfig(coordinated=True), predictor=model)
        state = AdvertisementState(wan)
        entries = entries_at(0, 0.9, prefix_id=0) + entries_at(
            1, 0.5, prefix_id=1)
        actions = cms.handle_sample(0, state, entries)
        coordinated = [a for a in actions if a.kind == "withdraw-coordinated"]
        assert coordinated
        withdrawn_links = {a.link_id for a in coordinated}
        assert 0 in withdrawn_links and 1 in withdrawn_links
        for link in withdrawn_links:
            assert not state.is_available(0, link)
