"""Tests for the deterministic hashing utilities."""

import pytest

from repro.util import geometric_day, mix64, pick, rotation, unit


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_seed_changes_output(self):
        assert mix64(1, 2, seed=0) != mix64(1, 2, seed=1)

    def test_order_matters(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_in_64_bit_range(self):
        h = mix64(123456789, 987654321)
        assert 0 <= h < (1 << 64)

    def test_no_trivial_collisions(self):
        values = {mix64(i) for i in range(10_000)}
        assert len(values) == 10_000


class TestUnit:
    def test_in_unit_interval(self):
        for i in range(1000):
            assert 0.0 <= unit(i, 7) < 1.0

    def test_roughly_uniform(self):
        n = 20_000
        mean = sum(unit(i) for i in range(n)) / n
        assert 0.48 < mean < 0.52


class TestPick:
    def test_picks_member(self):
        items = ["a", "b", "c"]
        assert pick(items, 5, 9) in items

    def test_deterministic(self):
        items = list(range(10))
        assert pick(items, 3) == pick(items, 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pick([], 1)


class TestRotation:
    def test_range(self):
        for i in range(100):
            assert 0 <= rotation(7, i) < 7

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            rotation(0, 1)

    def test_set_keyed_rotation_changes_on_membership(self):
        # the property the ingress simulator relies on: changing the
        # candidate set usually re-draws the choice
        changed = 0
        trials = 200
        for i in range(trials):
            full = rotation(3, i, 10, 20, 30)
            reduced = rotation(2, i, 10, 20)
            if full != reduced:
                changed += 1
        assert changed > trials * 0.3


class TestGeometricDay:
    def test_zero_probability_gives_cap(self):
        assert geometric_day(0.0, 1, cap=500) == 500

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            geometric_day(1.0, 1)
        with pytest.raises(ValueError):
            geometric_day(-0.1, 1)

    def test_deterministic(self):
        assert geometric_day(0.01, 42) == geometric_day(0.01, 42)

    def test_mean_close_to_geometric(self):
        p = 0.05
        n = 5000
        mean = sum(geometric_day(p, i) for i in range(n)) / n
        # E[geometric first-success index] = (1-p)/p = 19
        assert 15 < mean < 24

    def test_capped(self):
        assert all(geometric_day(1e-9, i, cap=100) <= 100
                   for i in range(50))
