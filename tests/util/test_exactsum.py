"""Tests for the exact-summation primitives behind incremental training."""

import math

import numpy as np

from repro.util import exact_add, exact_is_zero, exact_sub, exact_value


class TestExactAccumulation:
    def test_matches_fsum(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(1e-6, 1e9, size=500).tolist()
        partials = []
        for v in values:
            exact_add(partials, v)
        assert exact_value(partials) == math.fsum(values)

    def test_order_free(self):
        """The partials' value is independent of accumulation order."""
        rng = np.random.default_rng(11)
        values = rng.uniform(0.1, 1e6, size=200).tolist()
        forward, backward = [], []
        for v in values:
            exact_add(forward, v)
        for v in reversed(values):
            exact_add(backward, v)
        assert exact_value(forward) == exact_value(backward)

    def test_subtract_inverts_add(self):
        rng = np.random.default_rng(13)
        values = rng.uniform(0.1, 1e6, size=100).tolist()
        partials = []
        for v in values:
            exact_add(partials, v)
        # remove in a scrambled order: still exact
        for v in sorted(values):
            exact_sub(partials, v)
        assert exact_value(partials) == 0.0
        assert exact_is_zero(partials)

    def test_partial_removal_is_exact(self):
        """Removing a subset leaves exactly the other subset's sum."""
        rng = np.random.default_rng(17)
        keep = rng.uniform(0.1, 1e6, size=50).tolist()
        drop = rng.uniform(0.1, 1e6, size=50).tolist()
        partials = []
        for v in keep + drop:
            exact_add(partials, v)
        for v in drop:
            exact_sub(partials, v)
        assert exact_value(partials) == math.fsum(keep)

    def test_cancellation_visible_to_naive_sum(self):
        """The classic case where plain += / -= loses: big + tiny."""
        naive = 0.0
        partials = []
        for v in (1e16, 1.0, -1e16):
            naive += v
            exact_add(partials, v)
        assert naive != 1.0              # float + is lossy here
        assert exact_value(partials) == 1.0

    def test_zero_value_means_all_zero_partials(self):
        """exact sum 0.0 <=> empty contribution (used for key eviction)."""
        partials = []
        exact_add(partials, 3.5)
        exact_add(partials, 1e-30)
        exact_sub(partials, 3.5)
        assert not exact_is_zero(partials)
        exact_sub(partials, 1e-30)
        assert exact_is_zero(partials)
        assert exact_value(partials) == 0.0
