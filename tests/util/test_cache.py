"""Tests for the bounded LRU mapping behind the simulator caches."""

from repro.util import LruDict


class TestLruDict:
    def test_put_get_roundtrip(self):
        cache: LruDict[str, int] = LruDict(capacity=4)
        cache.put("a", 1)
        cache["b"] = 2
        assert cache.get("a") == 1
        assert cache.get("b") == 2
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_counts_hits_and_misses(self):
        cache: LruDict[str, int] = LruDict(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("zzz") is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_uncounted_get(self):
        cache: LruDict[str, int] = LruDict(capacity=4)
        cache.put("a", 1)
        assert cache.get("a", count=False) == 1
        assert cache.get("zzz", count=False) is None
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate == 0.0

    def test_evicts_least_recently_used(self):
        cache: LruDict[int, int] = LruDict(capacity=3)
        for key in (1, 2, 3):
            cache.put(key, key * 10)
        assert cache.get(1) == 10        # 1 is now most recent
        cache.put(4, 40)                 # evicts 2, the stalest
        assert cache.get(2) is None
        assert cache.get(1) == 10
        assert cache.get(3) == 30
        assert cache.evictions == 1
        assert len(cache) == 3

    def test_overwrite_refreshes_recency(self):
        cache: LruDict[int, int] = LruDict(capacity=2)
        cache.put(1, 10)
        cache.put(2, 20)
        cache.put(1, 11)                 # rewrite moves 1 to the fresh end
        cache.put(3, 30)                 # evicts 2
        assert cache.get(1) == 11
        assert cache.get(2) is None

    def test_falsy_values_still_hit(self):
        # the simulator caches empty ShareVectors; a falsy value must not
        # read as a miss
        cache: LruDict[str, tuple] = LruDict(capacity=2)
        cache.put("empty", ())
        assert cache.get("empty") == ()
        assert (cache.hits, cache.misses) == (1, 0)

    def test_unbounded_when_capacity_nonpositive(self):
        cache: LruDict[int, int] = LruDict(capacity=0)
        for key in range(1000):
            cache.put(key, key)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_clear_keeps_counters(self):
        cache: LruDict[int, int] = LruDict(capacity=2)
        cache.put(1, 10)
        cache.get(1)
        cache.get(2)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 1)
