"""Store-test isolation: the obs switch is a process global."""

import pytest

from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs.reset()
    yield
    obs.reset()
