"""SegmentStore contracts: atomic writes, verified reads, degradation.

The load-bearing promise (docs/storage.md): a write either fully lands
or never happened, and *every* flavour of on-disk damage — missing
file, truncation, bit flips, version skew, a mangled manifest — turns
into ``read() -> None`` plus a ``degraded`` entry, never an exception.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import runtime as obs
from repro.store import (
    MANIFEST_NAME,
    STORE_FORMAT,
    SegmentInfo,
    SegmentStore,
    open_memmap_column,
)


def _arrays(n=8, offset=0):
    return {
        "k0": np.arange(n, dtype=np.int64) + offset,
        "value": np.arange(n, dtype=np.float64) * 1.5,
    }


@pytest.fixture()
def store(tmp_path):
    return SegmentStore(tmp_path, create=True)


class TestRoundTrip:
    def test_write_read_round_trip(self, store):
        arrays = _arrays()
        info = store.write("seg-a", arrays, kind="day_counts", rows=8)
        assert info.rows == 8
        assert info.format == STORE_FORMAT
        got = store.read("seg-a")
        assert got is not None
        assert sorted(got) == ["k0", "value"]
        np.testing.assert_array_equal(got["k0"], arrays["k0"])
        np.testing.assert_array_equal(got["value"], arrays["value"])
        assert store.degraded == []

    def test_reopen_sees_same_segments(self, store, tmp_path):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        store.set_meta({"answer": "42"})
        reopened = SegmentStore(tmp_path)
        assert reopened.meta["answer"] == "42"
        assert [i.name for i in reopened.segments()] == ["seg-a"]
        assert reopened.read("seg-a") is not None

    def test_overwrite_replaces(self, store):
        store.write("seg-a", _arrays(offset=0), kind="day_counts", rows=8)
        store.write("seg-a", _arrays(offset=100), kind="day_counts", rows=8)
        got = store.read("seg-a")
        assert got["k0"][0] == 100
        assert len(store.segments()) == 1

    def test_write_order_is_manifest_order(self, store):
        for name in ("zz", "aa", "mm"):
            store.write(name, _arrays(), kind="day_counts", rows=8)
        assert [i.name for i in store.segments()] == ["zz", "aa", "mm"]

    def test_invalid_segment_name_rejected(self, store):
        with pytest.raises(ValueError):
            store.write("../escape", _arrays(), kind="x", rows=1)

    def test_total_bytes_matches_manifest(self, store):
        store.write("a", _arrays(), kind="x", rows=8)
        store.write("b", _arrays(16), kind="x", rows=16)
        assert store.total_bytes() == sum(
            i.nbytes for i in store.segments())

    def test_no_temp_files_left_behind(self, store, tmp_path):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


class TestDegradation:
    def test_never_written_is_none(self, store):
        assert store.read("ghost") is None
        assert store.degraded == []  # absence is not damage

    def test_missing_file(self, store, tmp_path):
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        (tmp_path / info.filename).unlink()
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert ("seg-a", "segment file missing") in fresh.degraded

    def test_truncated_segment(self, store, tmp_path):
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        path = tmp_path / info.filename
        path.write_bytes(path.read_bytes()[:-16])
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert ("seg-a", "checksum mismatch") in fresh.degraded

    def test_bit_flip(self, store, tmp_path):
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        path = tmp_path / info.filename
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert ("seg-a", "checksum mismatch") in fresh.degraded

    def test_segment_version_skew(self, store, tmp_path):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["segments"][0]["format"] = STORE_FORMAT + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert any(name == "seg-a" and "format" in reason
                   for name, reason in fresh.degraded)

    def test_manifest_version_skew_empties_store(self, store, tmp_path):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["format"] = STORE_FORMAT + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        fresh = SegmentStore(tmp_path)
        assert fresh.segments() == ()
        assert any(name == "<manifest>" for name, _ in fresh.degraded)

    def test_corrupt_manifest_json(self, store, tmp_path):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        fresh = SegmentStore(tmp_path)
        assert fresh.segments() == ()
        assert ("<manifest>", "manifest unreadable") in fresh.degraded

    def test_absent_manifest_is_empty_not_degraded(self, tmp_path):
        fresh = SegmentStore(tmp_path / "nowhere")
        assert fresh.segments() == ()
        assert fresh.degraded == []

    def test_degraded_read_never_raises_and_is_sticky(self, store,
                                                      tmp_path):
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        (tmp_path / info.filename).write_bytes(b"garbage")
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert fresh.read("seg-a") is None  # cached verdict, no re-hash
        assert len([d for d in fresh.degraded if d[0] == "seg-a"]) == 1

    def test_inspect_reports_status_per_segment(self, store, tmp_path):
        store.write("good", _arrays(), kind="x", rows=8)
        info = store.write("bad", _arrays(), kind="x", rows=8)
        (tmp_path / info.filename).unlink()
        fresh = SegmentStore(tmp_path)
        status = dict((i.name, s) for i, s in fresh.inspect())
        assert status["good"] == "ok"
        assert status["bad"] == "segment file missing"


class TestMemmap:
    def test_mmap_column_matches_read(self, store):
        arrays = _arrays(64)
        store.write("seg-a", arrays, kind="day_counts", rows=64)
        mapped = store.mmap_column("seg-a", "value")
        assert isinstance(mapped, np.memmap)
        np.testing.assert_array_equal(np.asarray(mapped), arrays["value"])

    def test_mmap_unknown_column_degrades(self, store):
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        assert store.mmap_column("seg-a", "nope") is None
        assert any(name == "seg-a" for name, _ in store.degraded)

    def test_open_memmap_column_is_read_only(self, store, tmp_path):
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        mapped = open_memmap_column(tmp_path / info.filename, "k0")
        with pytest.raises((ValueError, TypeError)):
            mapped[0] = 99


class TestObservability:
    def test_write_and_read_counters(self, tmp_path):
        obs.enable(fresh=True)
        store = SegmentStore(tmp_path, create=True)
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        store.read("seg-a")
        snap = obs.snapshot()
        assert snap.counters["store.write.segments"] == 1
        assert snap.counters["store.write.bytes"] == info.nbytes
        assert snap.counters["store.read.segments"] == 1
        assert snap.counters["store.read.bytes"] == info.nbytes

    def test_degraded_counter(self, tmp_path):
        store = SegmentStore(tmp_path, create=True)
        info = store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        (tmp_path / info.filename).unlink()
        obs.enable(fresh=True)
        fresh = SegmentStore(tmp_path)
        assert fresh.read("seg-a") is None
        assert obs.snapshot().counters["store.read.degraded"] == 1

    def test_silent_when_disabled(self, tmp_path):
        store = SegmentStore(tmp_path, create=True)
        store.write("seg-a", _arrays(), kind="day_counts", rows=8)
        store.read("seg-a")
        assert obs.snapshot().empty


class TestSegmentInfo:
    def test_json_round_trip(self):
        info = SegmentInfo(name="a", filename="a.npz", kind="day_counts",
                           rows=3, nbytes=100, sha256="ff" * 32,
                           meta={"day": "7"})
        assert SegmentInfo.from_json(info.to_json()) == info
