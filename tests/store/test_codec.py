"""Codec round-trip properties: same floats, same order, every time.

The snapshot bit-identical guarantee reduces to these two encoders
being lossless and order-preserving, so hypothesis drives them with
arbitrary int64 keys and float64 values (including the awkward ones:
subnormals, huge magnitudes, negative zero).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.codec import (
    decode_keyed_table,
    decode_ragged,
    encode_keyed_table,
    encode_ragged,
    key_column_names,
)

_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_FLOATS = st.floats(allow_nan=False, allow_infinity=True, width=64)


def _tables(width):
    return st.dictionaries(
        keys=st.tuples(*([_INT64] * width)), values=_FLOATS, max_size=40)


@st.composite
def _table_and_width(draw):
    width = draw(st.integers(min_value=1, max_value=7))
    return draw(_tables(width)), width


class TestKeyedTableProperties:
    @given(_table_and_width())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_exact_and_ordered(self, table_and_width):
        table, width = table_and_width
        columns = encode_keyed_table(table, width)
        decoded = list(decode_keyed_table(columns, width))
        assert [key for key, _ in decoded] == list(table)
        for (_key, got), expected in zip(decoded, table.values()):
            # == would call -0.0 and 0.0 the same row; bit-identity is
            # the actual contract
            assert math.isnan(got) if math.isnan(expected) else (
                got == expected and math.copysign(1.0, got)
                == math.copysign(1.0, expected))

    @given(_table_and_width())
    @settings(max_examples=50, deadline=None)
    def test_column_shapes(self, table_and_width):
        table, width = table_and_width
        columns = encode_keyed_table(table, width)
        assert sorted(columns) == sorted(
            key_column_names(width) + ("value",))
        for name, column in columns.items():
            assert len(column) == len(table)
            assert column.dtype == (np.float64 if name == "value"
                                    else np.int64)

    def test_wrong_key_width_rejected(self):
        with pytest.raises(ValueError):
            encode_keyed_table({(1, 2): 1.0}, 3)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            encode_keyed_table({}, 0)


class TestRaggedProperties:
    @given(st.lists(st.lists(_FLOATS, max_size=12), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, rows):
        values, offsets = encode_ragged(rows)
        decoded = decode_ragged(values, offsets)
        assert len(decoded) == len(rows)
        for got, expected in zip(decoded, rows):
            assert len(got) == len(expected)
            for g, e in zip(got, expected):
                assert math.isnan(g) if math.isnan(e) else g == e

    @given(st.lists(st.lists(_FLOATS, max_size=8), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_offsets_are_csr(self, rows):
        values, offsets = encode_ragged(rows)
        assert offsets[0] == 0
        assert offsets[-1] == len(values)
        assert (np.diff(offsets) >= 0).all()

    def test_empty(self):
        values, offsets = encode_ragged([])
        assert decode_ragged(values, offsets) == []
