"""Cross-cutting behavioural contracts pinned down explicitly."""

import pytest

from repro.bgp import AdvertisementState
from repro.core import FEATURES_AL, HistoricalModel
from repro.experiments import paper
from repro.experiments.report import _accuracy_section
from repro.experiments.runner import AccuracyBlock
from repro.pipeline import FlowContext, UNKNOWN_LOCATION
from repro.topology import (
    MetroCatalog,
    TopologyParams,
    WANParams,
    generate_as_graph,
    generate_wan,
)


class TestUnknownLocationSemantics:
    def test_unknown_location_is_its_own_category(self):
        """Flows without a Geo-IP hit still train and predict at AL
        grain: UNKNOWN_LOCATION acts as one more location value, never
        as a wildcard."""
        model = HistoricalModel(FEATURES_AL)
        known = FlowContext(1, 10, 3, 0, 0)
        unknown = FlowContext(1, 11, UNKNOWN_LOCATION, 0, 0)
        model.observe(known, 5, 100.0)
        model.observe(unknown, 7, 100.0)
        assert model.predict(known, 1)[0].link_id == 5
        assert model.predict(unknown, 1)[0].link_id == 7
        # a third location matches neither bucket
        elsewhere = FlowContext(1, 12, 9, 0, 0)
        assert model.predict(elsewhere, 1) == []


class TestRoutingTableSharing:
    def test_non_deseeding_removals_share_tables(self, small_scenario):
        """Outages that leave every peer with >= 1 link reuse the
        full-availability routing table object (the performance contract
        behind week-long simulations)."""
        sim = small_scenario.simulator
        wan = small_scenario.wan
        multi_link_peer = next(a for a in wan.peer_asns
                               if len(wan.links_of_peer(a)) >= 2)
        link = wan.links_of_peer(multi_link_peer)[0].link_id
        base = sim.routing_table(frozenset())
        removed = sim.routing_table(frozenset({link}))
        assert removed is base

    def test_deseeding_removal_gets_new_table(self, small_scenario):
        sim = small_scenario.simulator
        wan = small_scenario.wan
        single = next((a for a in wan.peer_asns
                       if len(wan.links_of_peer(a)) == 1), None)
        if single is None:
            pytest.skip("no single-link peer in this world")
        link = wan.links_of_peer(single)[0].link_id
        base = sim.routing_table(frozenset())
        removed = sim.routing_table(frozenset({link}))
        assert removed is not base
        assert single not in removed.seeded


class TestWanGenerationEdges:
    def test_tier1_only_peering(self):
        metros = MetroCatalog()
        graph = generate_as_graph(metros, TopologyParams(
            n_tier1=3, n_transit=5, n_access=5, n_cdn=1, n_stub=10), seed=2)
        params = WANParams(peer_prob={"tier1": 1.0, "transit": 0.0,
                                      "cdn": 0.0, "access": 0.0,
                                      "stub": 0.0})
        wan = generate_wan(graph, params, seed=2)
        roles = {graph.node(a).role.value for a in wan.peer_asns}
        assert roles == {"tier1"}

    def test_state_over_custom_wan(self):
        metros = MetroCatalog()
        graph = generate_as_graph(metros, TopologyParams(
            n_tier1=3, n_transit=5, n_access=5, n_cdn=1, n_stub=10), seed=2)
        wan = generate_wan(graph, WANParams(n_dest_prefixes=4), seed=2)
        state = AdvertisementState(wan)
        state.set_link_down(wan.links[0].link_id)
        assert not state.is_available(0, wan.links[0].link_id)


class TestReportEdges:
    def test_missing_reference_model_renders_dashes(self):
        block = AccuracyBlock(rows={"MysteryModel": {1: 0.5, 2: 0.6,
                                                     3: 0.7},
                                    "Hist_AP": {1: 0.8, 2: 0.9, 3: 0.95}})
        lines = _accuracy_section("t", block, paper.PAPER_TABLE4)
        mystery = next(l for l in lines if "MysteryModel" in l)
        assert "—" in mystery
        known = next(l for l in lines if "Hist_AP" in l)
        assert "—" not in known
