"""Tests for valley-free route propagation to the WAN."""

import numpy as np
import pytest

from repro.bgp import RoutingTable, compute_routing_table
from repro.topology import ASGraph, ASNode, ASRole, MetroCatalog, Relationship


def no_bias(asn, provider):
    return 0.0


@pytest.fixture()
def chain_graph():
    """T1 (tier1) <- T (transit) <- A (access) <- S (stub); T1 and T peer
    directly with the WAN in different tests via the seeded set."""
    metros = MetroCatalog()
    g = ASGraph(metros)
    g.add_as(ASNode(1, ASRole.TIER1, ("sea", "lon")))
    g.add_as(ASNode(2, ASRole.TRANSIT, ("sea",)))
    g.add_as(ASNode(3, ASRole.ACCESS, ("sea",)))
    g.add_as(ASNode(4, ASRole.STUB, ("sea",)))
    g.add_link(2, 1, Relationship.PROVIDER)
    g.add_link(3, 2, Relationship.PROVIDER)
    g.add_link(4, 3, Relationship.PROVIDER)
    return g


class TestRoutePropagation:
    def test_seeded_as_is_direct(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({1}), no_bias)
        assert table.get(1).direct
        assert table.get(1).dist == 1

    def test_routes_flow_down_customer_cone(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({1}), no_bias)
        assert table.get(2).dist == 2
        assert table.get(3).dist == 3
        assert table.get(4).dist == 4
        assert table.get(4).nexthops == (3,)

    def test_routes_do_not_flow_up(self, chain_graph):
        # only the stub's access provider peers: nothing above it learns
        table = compute_routing_table(chain_graph, frozenset({3}), no_bias)
        assert table.get(4) is not None        # customer of 3: learns
        assert table.get(2) is None            # provider of 3: valley-free
        assert table.get(1) is None

    def test_peer_routes_not_exported_to_peers(self):
        metros = MetroCatalog()
        g = ASGraph(metros)
        g.add_as(ASNode(1, ASRole.TRANSIT, ("sea",)))
        g.add_as(ASNode(2, ASRole.TRANSIT, ("sea",)))
        g.add_link(1, 2, Relationship.PEER)
        table = compute_routing_table(g, frozenset({1}), no_bias)
        # AS 2 peers with AS 1, but AS 1's (peer-learned) WAN route is not
        # exported to peers: AS 2 has no route
        assert table.get(2) is None

    def test_multiple_seeds_shortest_wins(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({1, 3}),
                                      no_bias)
        # stub reaches via its access provider (direct), dist 2
        assert table.get(4).dist == 2
        # transit reaches via tier-1, not via its customer's route
        assert table.get(2).dist == 2
        assert table.get(2).nexthops == (1,)

    def test_empty_seed_empty_table(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset(), no_bias)
        assert len(table) == 0

    def test_seed_not_in_graph_ignored(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({99}), no_bias)
        assert len(table) == 0

    def test_nexthops_ranked_by_bias(self):
        metros = MetroCatalog()
        g = ASGraph(metros)
        g.add_as(ASNode(1, ASRole.TRANSIT, ("sea",)))
        g.add_as(ASNode(2, ASRole.TRANSIT, ("sea",)))
        g.add_as(ASNode(3, ASRole.STUB, ("sea",)))
        g.add_link(3, 1, Relationship.PROVIDER)
        g.add_link(3, 2, Relationship.PROVIDER)

        def bias(asn, provider):
            return 0.2 if provider == 1 else 0.0

        table = compute_routing_table(g, frozenset({1, 2}), bias)
        # both providers at dist 1, but provider 2 has lower bias
        assert table.get(3).nexthops[0] == 2

    def test_spray_tolerance_excludes_far_ranked(self):
        metros = MetroCatalog()
        g = ASGraph(metros)
        g.add_as(ASNode(1, ASRole.TIER1, ("sea",)))
        g.add_as(ASNode(2, ASRole.TRANSIT, ("sea",)))
        g.add_as(ASNode(3, ASRole.STUB, ("sea",)))
        g.add_link(2, 1, Relationship.PROVIDER)
        g.add_link(3, 1, Relationship.PROVIDER)
        g.add_link(3, 2, Relationship.PROVIDER)
        table = compute_routing_table(g, frozenset({1}), no_bias)
        # provider 1 at dist 1, provider 2 at dist 2: only 1 sprayable
        assert table.get(3).nexthops == (1,)

    def test_reachable_and_distance_api(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({1}), no_bias)
        assert set(table.reachable_asns()) == {1, 2, 3, 4}
        assert table.distance(4) == 4
        assert table.distance(99) is None
        assert 4 in table
        assert 99 not in table


class TestTableSnapshot:
    """to_arrays/from_arrays: the columnar persistence boundary."""

    def test_array_roundtrip_bit_identical(self, chain_graph):
        table = compute_routing_table(chain_graph, frozenset({1, 2}), no_bias)
        arrays = table.to_arrays()
        restored = RoutingTable.from_arrays(chain_graph, arrays)
        assert restored.columns_equal(table)
        assert restored.seeded == table.seeded
        for asn in table.reachable_asns():
            assert restored.get(asn) == table.get(asn)
            assert restored.distance(asn) == table.distance(asn)

    def test_arrays_pin_dtypes(self, chain_graph):
        arrays = compute_routing_table(
            chain_graph, frozenset({1}), no_bias).to_arrays()
        assert arrays["asn"].dtype == np.int64
        assert arrays["dist"].dtype == np.int32
        assert arrays["direct"].dtype == np.uint8
        assert arrays["nh_values"].dtype == np.int64
        assert arrays["nh_offsets"].dtype == np.int64
        assert arrays["seeded"].dtype == np.int64

    def test_from_arrays_rejects_foreign_graph(self, chain_graph):
        arrays = compute_routing_table(
            chain_graph, frozenset({1}), no_bias).to_arrays()
        metros = MetroCatalog()
        other = ASGraph(metros)
        other.add_as(ASNode(9, ASRole.TIER1, ("sea",)))
        with pytest.raises(ValueError):
            RoutingTable.from_arrays(other, arrays)

    def test_segment_store_roundtrip(self, chain_graph, tmp_path):
        from repro.store import SegmentStore

        table = compute_routing_table(chain_graph, frozenset({1, 2}), no_bias)
        arrays = table.to_arrays()
        store = SegmentStore(tmp_path / "snap", create=True)
        store.write("routing_base", arrays, kind="routing_table",
                    rows=len(arrays["asn"]))
        loaded = SegmentStore(tmp_path / "snap").read("routing_base")
        assert loaded is not None
        restored = RoutingTable.from_arrays(chain_graph, loaded)
        assert restored.columns_equal(table)
