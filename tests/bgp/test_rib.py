"""Tests for the edge-router RIB model."""

import pytest

from repro.bgp import Announcement, EdgeRouter, Route, Withdrawal


def ann(session, prefix, path, lp=100):
    return Announcement(session, Route(prefix, tuple(path),
                                       next_hop=session, local_pref=lp))


class TestAdjRibIn:
    def test_announce_then_withdraw(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.receive(ann("s1", "10.0.0.0/24", (7,)))
        rib = router.adj_rib_in("s1")
        assert rib.route_for("10.0.0.0/24") is not None
        router.receive(Withdrawal("s1", "10.0.0.0/24"))
        assert rib.route_for("10.0.0.0/24") is None

    def test_implicit_withdraw_replaces(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.receive(ann("s1", "10.0.0.0/24", (7,)))
        router.receive(ann("s1", "10.0.0.0/24", (7, 8)))
        route = router.adj_rib_in("s1").route_for("10.0.0.0/24")
        assert route.as_path == (7, 8)
        assert len(router.adj_rib_in("s1")) == 1

    def test_wrong_session_rejected(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        with pytest.raises(KeyError):
            router.receive(ann("s2", "10.0.0.0/24", (7,)))


class TestLocRib:
    def test_best_route_across_sessions(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.add_session("s2")
        router.receive(ann("s1", "10.0.0.0/24", (7, 9)))
        router.receive(ann("s2", "10.0.0.0/24", (8,)))
        best = router.loc_rib.best_for("10.0.0.0/24")
        assert best.as_path == (8,)  # shorter path wins

    def test_withdraw_falls_back(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.add_session("s2")
        router.receive(ann("s1", "10.0.0.0/24", (7, 9)))
        router.receive(ann("s2", "10.0.0.0/24", (8,)))
        router.receive(Withdrawal("s2", "10.0.0.0/24"))
        best = router.loc_rib.best_for("10.0.0.0/24")
        assert best.as_path == (7, 9)

    def test_all_withdrawn_clears_best(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.receive(ann("s1", "10.0.0.0/24", (7,)))
        router.receive(Withdrawal("s1", "10.0.0.0/24"))
        assert router.loc_rib.best_for("10.0.0.0/24") is None


class TestOutboundAdvertisements:
    def test_announce_withdraw_cycle(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.announce("s1", "100.64.0.0/10")
        assert router.is_advertised("s1", "100.64.0.0/10")
        message = router.withdraw("s1", "100.64.0.0/10")
        assert not router.is_advertised("s1", "100.64.0.0/10")
        assert message.prefix == "100.64.0.0/10"

    def test_advertised_listing_sorted(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.announce("s1", "b/24")
        router.announce("s1", "a/24")
        assert router.advertised("s1") == ("a/24", "b/24")

    def test_duplicate_session_rejected(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        with pytest.raises(ValueError):
            router.add_session("s1")

    def test_message_log_records_everything(self):
        router = EdgeRouter("er1")
        router.add_session("s1")
        router.receive(ann("s1", "10.0.0.0/24", (7,)))
        router.announce("s1", "100.64.0.0/10")
        router.withdraw("s1", "100.64.0.0/10")
        assert len(router.message_log) == 3
