"""Tests for the ingress simulator: the ground-truth routing engine."""

import pytest

from repro.bgp import AdvertisementState, IngressSimulator, SimulatorParams
from repro.topology import (
    ASGraph,
    ASNode,
    ASRole,
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Pocket,
    Region,
    Relationship,
)


def build_world():
    """Small deterministic world: tier1, transit, CDN with a pocket,
    stub; WAN with links to tier1, transit and CDN."""
    metros = MetroCatalog()
    g = ASGraph(metros)
    g.add_as(ASNode(1, ASRole.TIER1, ("sea", "lon", "sin", "nyc")))
    g.add_as(ASNode(2, ASRole.TRANSIT, ("sea", "nyc")))
    g.add_as(ASNode(3, ASRole.CDN, ("sea", "lon", "sin"),
                    pockets=(Pocket(frozenset({"sin"}), (1,)),)))
    g.add_as(ASNode(4, ASRole.STUB, ("nyc",)))
    g.add_link(2, 1, Relationship.PROVIDER)
    g.add_link(3, 1, Relationship.PROVIDER)
    g.add_link(4, 2, Relationship.PROVIDER)

    links = [
        PeeringLink(0, 1, "sea", "sea-er1", 400.0),
        PeeringLink(1, 1, "lon", "lon-er1", 400.0),
        PeeringLink(2, 2, "sea", "sea-er2", 100.0),
        PeeringLink(3, 2, "nyc", "nyc-er1", 100.0),
        PeeringLink(4, 3, "sea", "sea-er3", 400.0),
        PeeringLink(5, 3, "lon", "lon-er2", 400.0),
        PeeringLink(6, 2, "nyc", "nyc-er2", 100.0),  # parallel to link 3
    ]
    regions = [Region("sea-region", "sea")]
    dests = [DestPrefix(0, "100.64.0.0/24", "sea-region", "web"),
             DestPrefix(1, "100.64.1.0/24", "sea-region", "storage")]
    wan = CloudWAN(8075, links, regions, dests, metros)
    return g, wan


@pytest.fixture()
def world():
    graph, wan = build_world()
    sim = IngressSimulator(graph, wan, SimulatorParams(), seed=1)
    return graph, wan, sim


class TestShareVector:
    def test_shares_sum_to_one(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        shares = sim.resolve_shares(4, "nyc", 100, 0, state)
        assert shares
        assert sum(f for _l, f in shares) == pytest.approx(1.0)

    def test_sorted_descending(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        shares = sim.resolve_shares(4, "nyc", 100, 0, state)
        fracs = [f for _l, f in shares]
        assert fracs == sorted(fracs, reverse=True)

    def test_deterministic(self, world):
        graph, wan = build_world()
        sim2 = IngressSimulator(graph, wan, SimulatorParams(), seed=1)
        _g, _wan, sim = world
        state1 = AdvertisementState(wan)
        state2 = AdvertisementState(wan)
        for prefix in range(20):
            assert (sim.resolve_shares(4, "nyc", prefix, 0, state1)
                    == sim2.resolve_shares(4, "nyc", prefix, 0, state2))

    def test_seed_changes_outcomes(self):
        graph, wan = build_world()
        sim_a = IngressSimulator(graph, wan, seed=1)
        sim_b = IngressSimulator(graph, wan, seed=2)
        state = AdvertisementState(wan)
        differs = any(
            sim_a.resolve_shares(4, "nyc", p, 0, state)
            != sim_b.resolve_shares(4, "nyc", p, 0, state)
            for p in range(30)
        )
        assert differs

    def test_internal_traffic_rejected(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        with pytest.raises(ValueError):
            sim.resolve_shares(wan.asn, "sea", 1, 0, state)

    def test_unknown_source_as_empty(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        assert sim.resolve_shares(999, "sea", 1, 0, state) == ()


class TestDirectDelivery:
    def test_stub_routes_via_provider_chain(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        # stub 4 -> transit 2 (direct peer): delivers on 2's links
        shares = sim.resolve_shares(4, "nyc", 100, 0, state)
        peers = {wan.link(l).peer_asn for l, _f in shares}
        assert peers == {2}

    def test_hot_potato_prefers_near_link(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        # the stub is in nyc; transit 2 has links in sea and nyc — the
        # nyc link should be the byte-weighted favourite across prefixes
        from collections import Counter
        mass = Counter()
        for prefix in range(200):
            for link, frac in sim.resolve_shares(4, "nyc", prefix, 0, state):
                mass[link] += frac
        assert mass[3] + mass[6] > mass[2]  # nyc links beat sea link

    def test_cdn_delivers_on_own_links(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        shares = sim.resolve_shares(3, "sea", 500, 0, state)
        peers = {wan.link(l).peer_asn for l, _f in shares}
        assert peers == {3}


class TestPockets:
    def test_pocket_traffic_avoids_own_far_links(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        # CDN 3's sin metro is a pocket with provider tier-1: traffic from
        # sin cannot use the CDN's sea/lon links and goes via AS 1
        shares = sim.resolve_shares(3, "sin", 600, 0, state)
        peers = {wan.link(l).peer_asn for l, _f in shares}
        assert peers == {1}


class TestWithdrawalsAndOutages:
    def test_withdrawn_link_not_used(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 100, 0, state)
        primary = base[0][0]
        state.withdraw(0, primary)
        shifted = sim.resolve_shares(4, "nyc", 100, 0, state)
        assert shifted
        assert primary not in {l for l, _f in shifted}

    def test_withdrawal_scoped_to_prefix(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 100, 1, state)
        state.withdraw(0, base[0][0])  # withdraw prefix 0 only
        unaffected = sim.resolve_shares(4, "nyc", 100, 1, state)
        assert unaffected == base

    def test_outage_affects_all_prefixes(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base0 = sim.resolve_shares(4, "nyc", 100, 0, state)
        state.set_link_down(base0[0][0])
        for dest in (0, 1):
            shares = sim.resolve_shares(4, "nyc", 100, dest, state)
            assert base0[0][0] not in {l for l, _f in shares}

    def test_full_peer_withdrawal_reroutes_as_level(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        # take down ALL of transit 2's links: stub traffic climbs to
        # tier-1 and arrives on AS 1's links instead of being lost
        for link in wan.links_of_peer(2):
            state.set_link_down(link.link_id)
        shares = sim.resolve_shares(4, "nyc", 100, 0, state)
        assert shares
        peers = {wan.link(l).peer_asn for l, _f in shares}
        assert peers == {1}

    def test_everything_down_traffic_lost(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        for link in wan.link_ids:
            state.set_link_down(link)
        assert sim.resolve_shares(4, "nyc", 100, 0, state) == ()

    def test_shortcut_unrelated_removal_is_identity(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 100, 0, state)
        # take down a CDN link the stub's traffic never touches
        state.set_link_down(5)
        assert sim.resolve_shares(4, "nyc", 100, 0, state) == base

    def test_same_removal_same_outcome(self, world):
        """Withdrawal outcomes are deterministic: the seen-outage
        learnability property (DESIGN.md choice 1)."""
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 100, 0, state)
        primary = base[0][0]
        state.set_link_down(primary)
        first = sim.resolve_shares(4, "nyc", 100, 0, state)
        state.set_link_up(primary)
        assert sim.resolve_shares(4, "nyc", 100, 0, state) == base
        state.set_link_down(primary)
        assert sim.resolve_shares(4, "nyc", 100, 0, state) == first


class TestDrift:
    def test_no_day_means_no_drift(self, world):
        _g, wan, sim = world
        assert sim.drift_state(4, 100, 0, None) == (False, False)

    def test_drift_monotone_in_time(self, world):
        _g, wan, sim = world
        minor_day, major_day = sim.drift_days(4, 100, 0)
        assert sim.drift_state(4, 100, 0, minor_day - 1)[0] is False
        assert sim.drift_state(4, 100, 0, minor_day)[0] is True
        assert sim.drift_state(4, 100, 0, major_day)[1] is True

    def test_some_flows_drift_within_horizon(self, world):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(
            minor_drift_daily=0.05), seed=3)
        drifted = sum(
            1 for p in range(200) if sim.drift_days(4, p, 0)[0] < 28)
        assert 0 < drifted < 200

    def test_drift_changes_shares(self, world):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(
            minor_drift_daily=0.5), seed=3)
        state = AdvertisementState(wan)
        changed = 0
        for p in range(50):
            before = sim.resolve_shares(4, "nyc", p, 0, state, day=0)
            after = sim.resolve_shares(4, "nyc", p, 0, state, day=27)
            if before != after:
                changed += 1
        assert changed > 0


class TestRoutingTableAPI:
    def test_as_distance(self, world):
        _g, _wan, sim = world
        assert sim.as_distance(1) == 1   # direct peer
        assert sim.as_distance(2) == 1   # direct peer
        assert sim.as_distance(4) == 2   # stub behind transit
        assert sim.as_distance(999) is None

    def test_cache_stats_populate(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        sim.resolve_shares(4, "nyc", 100, 0, state)
        stats = sim.cache_stats()
        assert stats["share_entries"] >= 1
        assert stats["tables_by_seeded"] >= 1


class TestCacheStats:
    def test_all_caches_reported(self, world):
        _g, wan, sim = world
        stats = sim.cache_stats()
        for key in ("share_entries", "visited_entries",
                    "entry_metro_entries", "removed_peers_entries",
                    "drift_entries", "ranked_pool_entries",
                    "primary_share_entries", "tables_by_removed",
                    "tables_by_seeded", "share_hits", "share_misses",
                    "table_hits", "table_misses", "ranked_pool_hits",
                    "ranked_pool_misses"):
            assert key in stats, key
            assert stats[key] == 0

    def test_hit_miss_counters(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        sim.resolve_shares(4, "nyc", 100, 0, state, day=0)
        stats = sim.cache_stats()
        assert stats["share_misses"] == 1
        assert stats["share_hits"] == 0
        assert stats["drift_entries"] == 1
        sim.resolve_shares(4, "nyc", 100, 0, state, day=0)
        stats = sim.cache_stats()
        assert stats["share_hits"] == 1
        assert stats["share_misses"] == 1
        # a different flow re-uses the routing table but not the shares
        sim.resolve_shares(4, "nyc", 101, 0, state, day=0)
        stats = sim.cache_stats()
        assert stats["share_misses"] == 2
        assert stats["table_hits"] >= 1
        assert stats["table_misses"] >= 1


class TestBoundedCaches:
    def test_table_cache_bounded_and_counted(self):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(table_cache_size=2),
                               seed=1)
        # every key deseeds at least one peer (all its links removed), so
        # each distinct seeded set needs its own derived table
        keys = [frozenset({0, 1}), frozenset({4, 5}), frozenset({2, 3, 6}),
                frozenset({0, 1, 4, 5}), frozenset({0, 1, 2, 3, 6})]
        for key in keys:
            sim.routing_table(key)
        stats = sim.cache_stats()
        assert stats["tables_by_removed"] <= 2
        assert stats["tables_by_seeded"] <= 2
        assert stats["table_evictions"] > 0
        # the pinned base is outside the LRU: churn paid exactly one
        # full rebuild, the rest were incremental repairs
        assert stats["table_full_rebuilds"] == 1
        assert stats["table_incremental_updates"] >= len(keys) - 1

    def test_evicted_table_recomputed_identically(self):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(table_cache_size=1),
                               seed=1)
        first = sim.routing_table(frozenset({0, 1}))
        sim.routing_table(frozenset({2}))          # evicts the first table
        again = sim.routing_table(frozenset({0, 1}))
        assert again is not first
        assert again.columns_equal(first)

    def test_install_table_validates_seeded_set(self):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(), seed=1)
        table = sim.routing_table(frozenset({0, 1}))  # deseeds peer 1
        with pytest.raises(ValueError):
            sim.install_table(frozenset({2}), table)
        sim.install_table(frozenset({0, 1}), table)
        assert sim.routing_table(frozenset({0, 1})) is table

    def test_export_gauges_includes_rates(self):
        from repro.obs import runtime as obs

        graph, wan = build_world()
        sim = IngressSimulator(graph, wan, SimulatorParams(), seed=1)
        sim.routing_table(frozenset())
        sim.routing_table(frozenset())
        obs.enable(fresh=True)
        try:
            sim.export_gauges()
            gauges = obs.snapshot().gauges
            assert gauges["bgp.simulator.table_hit_rate"] == 0.5
            assert "bgp.simulator.share_hit_rate" in gauges
            assert "bgp.simulator.visited_hit_rate" in gauges
            assert "bgp.simulator.table_full_rebuilds" in gauges
        finally:
            obs.disable()
