"""BGP substrate tests."""
