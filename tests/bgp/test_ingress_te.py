"""Tests for ingress traffic engineering via AS-path prepending (§2).

The paper calls prepending "coarse grained and heuristic — they may
just be ignored by ASes along the path"; the simulator honours it
probabilistically and only as a preference demotion, never a hard
withdrawal.
"""

import pytest

from repro.bgp import AdvertisementState, IngressSimulator, SimulatorParams

from .test_simulator import build_world


@pytest.fixture()
def world():
    graph, wan = build_world()
    sim = IngressSimulator(graph, wan, SimulatorParams(te_compliance=1.0),
                           seed=1)
    return graph, wan, sim


class TestStateApi:
    def test_prepend_roundtrip(self, world):
        _g, wan, _sim = world
        state = AdvertisementState(wan)
        state.prepend(0, 3, times=2)
        assert state.prepend_key(0) == ((3, 2),)
        assert state.prepends_for(0) == {3: 2}
        assert state.prepend_key(1) == ()
        state.clear_prepend(0, 3)
        assert state.prepend_key(0) == ()

    def test_invalid_prepend(self, world):
        _g, wan, _sim = world
        state = AdvertisementState(wan)
        with pytest.raises(ValueError):
            state.prepend(0, 3, times=0)
        with pytest.raises(KeyError):
            state.prepend(0, 999)

    def test_clear_resets_prepends(self, world):
        _g, wan, _sim = world
        state = AdvertisementState(wan)
        state.prepend(0, 3)
        state.clear()
        assert state.prepend_key(0) == ()

    def test_prepend_bumps_version(self, world):
        _g, wan, _sim = world
        state = AdvertisementState(wan)
        v = state.version
        state.prepend(0, 3)
        assert state.version > v


class TestRoutingEffect:
    def test_prepending_sheds_traffic(self, world):
        """With full compliance, heavy prepending demotes the link out
        of most flows' primary slot."""
        _g, wan, sim = world
        clean = AdvertisementState(wan)
        shifted = AdvertisementState(wan)
        # find the favourite nyc link across flows, then prepend it away
        mass = {}
        for prefix in range(100):
            for link, frac in sim.resolve_shares(4, "nyc", prefix, 0, clean):
                mass[link] = mass.get(link, 0.0) + frac
        favourite = max(mass, key=mass.get)
        shifted.prepend(0, favourite, times=4)
        mass_after = {}
        for prefix in range(100):
            for link, frac in sim.resolve_shares(4, "nyc", prefix, 0,
                                                 shifted):
                mass_after[link] = mass_after.get(link, 0.0) + frac
        assert mass_after.get(favourite, 0.0) < mass[favourite] * 0.5

    def test_prepending_scoped_to_prefix(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 50, 1, state)
        state.prepend(0, base[0][0], times=4)  # TE on prefix 0 only
        assert sim.resolve_shares(4, "nyc", 50, 1, state) == base

    def test_prepending_is_soft_unlike_withdrawal(self, world):
        """A fully-prepended-everywhere prefix still gets delivered —
        prepending demotes, withdrawal removes."""
        _g, wan, sim = world
        state = AdvertisementState(wan)
        for link in wan.link_ids:
            state.prepend(0, link, times=4)
        shares = sim.resolve_shares(4, "nyc", 60, 0, state)
        assert shares  # traffic still arrives somewhere
        assert sum(f for _l, f in shares) == pytest.approx(1.0)

    def test_compliance_zero_means_ignored(self):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan,
                               SimulatorParams(te_compliance=0.0), seed=1)
        clean = AdvertisementState(wan)
        te = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 70, 0, clean)
        te.prepend(0, base[0][0], times=4)
        assert sim.resolve_shares(4, "nyc", 70, 0, te) == base

    def test_clearing_prepend_restores_baseline(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 80, 0, state)
        state.prepend(0, base[0][0], times=4)
        assert sim.resolve_shares(4, "nyc", 80, 0, state) != base
        state.clear_prepend(0, base[0][0])
        assert sim.resolve_shares(4, "nyc", 80, 0, state) == base

    def test_prepend_combines_with_withdrawal(self, world):
        _g, wan, sim = world
        state = AdvertisementState(wan)
        base = sim.resolve_shares(4, "nyc", 90, 0, state)
        primary = base[0][0]
        state.prepend(0, primary, times=4)
        state.set_link_down(primary)
        shares = sim.resolve_shares(4, "nyc", 90, 0, state)
        assert shares
        assert primary not in {l for l, _f in shares}

    def test_partial_compliance_partial_effect(self):
        graph, wan = build_world()
        sim = IngressSimulator(graph, wan,
                               SimulatorParams(te_compliance=0.5), seed=1)
        clean = AdvertisementState(wan)
        moved = kept = 0
        for prefix in range(200):
            base = sim.resolve_shares(4, "nyc", prefix, 0, clean)
            primary = base[0][0]
            te_state = AdvertisementState(wan)
            te_state.prepend(0, primary, times=4)
            after = sim.resolve_shares(4, "nyc", prefix, 0, te_state)
            if after[0][0] == primary:
                kept += 1
            else:
                moved += 1
        # some flows honour the hint, some ignore it
        assert moved > 20
        assert kept > 20
