"""Tests for the advertisement/outage state."""

import pytest

from repro.bgp import AdvertisementState
from repro.topology import (
    CloudWAN,
    DestPrefix,
    MetroCatalog,
    PeeringLink,
    Region,
)


@pytest.fixture()
def wan():
    metros = MetroCatalog()
    links = [PeeringLink(i, 100 + i % 2, "sea", "sea-er1", 100.0)
             for i in range(4)]
    regions = [Region("sea-region", "sea")]
    dests = [DestPrefix(0, "100.64.0.0/24", "sea-region", "web"),
             DestPrefix(1, "100.64.1.0/24", "sea-region", "storage")]
    return CloudWAN(8075, links, regions, dests, metros)


class TestWithdrawals:
    def test_default_all_available(self, wan):
        state = AdvertisementState(wan)
        for link in wan.link_ids:
            assert state.is_available(0, link)

    def test_withdraw_and_reannounce(self, wan):
        state = AdvertisementState(wan)
        state.withdraw(0, 1)
        assert not state.is_available(0, 1)
        assert state.is_available(1, 1)  # other prefix untouched
        state.announce(0, 1)
        assert state.is_available(0, 1)

    def test_withdrawn_links(self, wan):
        state = AdvertisementState(wan)
        state.withdraw(0, 1)
        state.withdraw(0, 2)
        assert state.withdrawn_links(0) == frozenset({1, 2})
        assert state.withdrawn_links(1) == frozenset()

    def test_unknown_ids_rejected(self, wan):
        state = AdvertisementState(wan)
        with pytest.raises(KeyError):
            state.withdraw(0, 99)
        with pytest.raises(KeyError):
            state.withdraw(42, 0)
        with pytest.raises(KeyError):
            state.set_link_down(99)

    def test_reannounce_idempotent(self, wan):
        state = AdvertisementState(wan)
        state.announce(0, 1)  # never withdrawn: no-op, no error
        assert state.is_available(0, 1)


class TestOutages:
    def test_outage_affects_all_prefixes(self, wan):
        state = AdvertisementState(wan)
        state.set_link_down(2)
        assert not state.is_available(0, 2)
        assert not state.is_available(1, 2)
        state.set_link_up(2)
        assert state.is_available(0, 2)

    def test_removal_key_combines(self, wan):
        state = AdvertisementState(wan)
        state.set_link_down(3)
        state.withdraw(0, 1)
        assert state.removal_key(0) == frozenset({1, 3})
        assert state.removal_key(1) == frozenset({3})

    def test_removal_key_cache_invalidation(self, wan):
        state = AdvertisementState(wan)
        key0 = state.removal_key(0)
        assert key0 == frozenset()
        state.set_link_down(1)
        assert state.removal_key(0) == frozenset({1})

    def test_clear(self, wan):
        state = AdvertisementState(wan)
        state.set_link_down(1)
        state.withdraw(0, 2)
        state.clear()
        assert state.removal_key(0) == frozenset()

    def test_version_monotonic(self, wan):
        state = AdvertisementState(wan)
        v0 = state.version
        state.set_link_down(1)
        state.withdraw(0, 2)
        assert state.version > v0

    def test_uids_unique(self, wan):
        a = AdvertisementState(wan)
        b = AdvertisementState(wan)
        assert a.uid != b.uid

    def test_available_links_filter(self, wan):
        state = AdvertisementState(wan)
        state.set_link_down(0)
        state.withdraw(0, 1)
        available = state.available_links(0, wan.links)
        assert [l.link_id for l in available] == [2, 3]
