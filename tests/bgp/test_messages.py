"""Tests for BGP message and route types."""

import pytest

from repro.bgp import Announcement, Origin, Route, Withdrawal


class TestRoute:
    def test_origin_and_neighbor_as(self):
        route = Route("10.0.0.0/24", (3, 7, 42), "r1")
        assert route.neighbor_as == 3
        assert route.origin_as == 42

    def test_empty_path(self):
        route = Route("10.0.0.0/24", (), "self")
        assert route.neighbor_as is None
        assert route.origin_as is None

    def test_loop_detection(self):
        route = Route("10.0.0.0/24", (3, 7, 42), "r1")
        assert route.has_loop(7)
        assert not route.has_loop(9)

    def test_prepend(self):
        route = Route("10.0.0.0/24", (7,), "r1", local_pref=200, med=5)
        prepended = route.prepended(3, times=2)
        assert prepended.as_path == (3, 3, 7)
        # attributes preserved
        assert prepended.local_pref == 200
        assert prepended.med == 5
        assert prepended.prefix == route.prefix

    def test_prepend_invalid_count(self):
        route = Route("10.0.0.0/24", (7,), "r1")
        with pytest.raises(ValueError):
            route.prepended(3, times=0)

    def test_frozen(self):
        route = Route("10.0.0.0/24", (7,), "r1")
        with pytest.raises(AttributeError):
            route.med = 9

    def test_origin_enum_ordering(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE


class TestMessages:
    def test_announcement_sequence_monotonic(self):
        r = Route("10.0.0.0/24", (7,), "r1")
        a1 = Announcement("s1", r)
        a2 = Announcement("s1", r)
        assert a2.seq > a1.seq

    def test_withdrawal_fields(self):
        w = Withdrawal("s2", "10.0.0.0/24", timestamp=12.5)
        assert w.session == "s2"
        assert w.prefix == "10.0.0.0/24"
        assert w.timestamp == 12.5
