"""Incremental dirty-set recomputation == full rebuild, bit for bit.

``update_routing_table`` exists so withdrawal churn at 10x graph scale
does not pay a full Gao–Rexford propagation per seed-set delta; its
entire correctness claim is that the repaired table is *indistinguishable*
from ``compute_routing_table`` run from scratch on the new seed set —
same distances, same direct flags, same ranked next-hops, same columnar
bytes.  Hypothesis drives random withdrawal / re-announce sequences over
a randomly generated topology and checks exactly that, including chains
where each table derives from the previous incremental result (so repair
errors would compound if they existed).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import compute_routing_table, update_routing_table
from repro.bgp.propagation import default_bias
from repro.topology import MetroCatalog, TopologyParams, generate_as_graph


def _small_graph(seed: int):
    params = TopologyParams(n_tier1=3, n_transit=8, n_access=20,
                            n_cdn=3, n_stub=40)
    return generate_as_graph(MetroCatalog(), params, seed=seed)


def _tables_identical(left, right) -> bool:
    """Columnar equality plus the per-AS view (lazy RouteInfo path)."""
    if not left.columns_equal(right):
        return False
    asns = set(left.reachable_asns())
    if asns != set(right.reachable_asns()):
        return False
    return all(left.get(asn) == right.get(asn) for asn in asns)


@st.composite
def _world_and_churn(draw):
    """A graph, its peer set, and a withdraw/re-announce sequence."""
    graph_seed = draw(st.integers(min_value=0, max_value=7))
    graph = _small_graph(graph_seed)
    asns = sorted(graph.asns)
    peers = draw(st.sets(st.sampled_from(asns), min_size=3, max_size=12))
    # each step toggles a subset of peers out of / back into the seed set
    steps = draw(st.lists(
        st.sets(st.sampled_from(sorted(peers)), min_size=1, max_size=4),
        min_size=1, max_size=6))
    return graph_seed, graph, frozenset(peers), steps


class TestIncrementalEquivalence:
    @given(_world_and_churn())
    @settings(max_examples=60, deadline=None)
    def test_single_delta_matches_scratch(self, world):
        graph_seed, graph, peers, steps = world
        bias = default_bias(graph, graph_seed)
        base = compute_routing_table(graph, peers, bias)
        for toggled in steps:
            seeded = peers - toggled
            repaired = update_routing_table(graph, base, seeded, bias)
            scratch = compute_routing_table(graph, seeded, bias)
            assert _tables_identical(repaired, scratch)

    @given(_world_and_churn())
    @settings(max_examples=60, deadline=None)
    def test_chained_deltas_match_scratch(self, world):
        graph_seed, graph, peers, steps = world
        bias = default_bias(graph, graph_seed)
        table = compute_routing_table(graph, peers, bias)
        seeded = set(peers)
        for toggled in steps:
            # withdraw peers that are up, re-announce peers that are down
            for asn in sorted(toggled):
                if asn in seeded:
                    seeded.discard(asn)
                else:
                    seeded.add(asn)
            table = update_routing_table(graph, table, frozenset(seeded),
                                         bias)
            scratch = compute_routing_table(graph, frozenset(seeded), bias)
            assert _tables_identical(table, scratch)

    @given(_world_and_churn())
    @settings(max_examples=30, deadline=None)
    def test_reannounce_restores_base_exactly(self, world):
        graph_seed, graph, peers, steps = world
        bias = default_bias(graph, graph_seed)
        base = compute_routing_table(graph, peers, bias)
        table = base
        for toggled in steps:
            table = update_routing_table(graph, table, peers - toggled, bias)
            table = update_routing_table(graph, table, peers, bias)
        assert _tables_identical(table, base)

    def test_identical_seeds_share_the_table(self):
        graph = _small_graph(0)
        bias = default_bias(graph, 0)
        peers = frozenset(sorted(graph.asns)[:6])
        base = compute_routing_table(graph, peers, bias)
        assert update_routing_table(graph, base, peers, bias) is base

    def test_unreachable_rows_identical(self):
        # a withdrawal that cuts a whole customer cone off must leave the
        # repaired table reporting the same unreachable set as scratch
        graph = _small_graph(1)
        bias = default_bias(graph, 1)
        asns = sorted(graph.asns)
        peers = frozenset(asns[:4])
        base = compute_routing_table(graph, peers, bias)
        for drop in asns[:4]:
            seeded = peers - {drop}
            repaired = update_routing_table(graph, base, seeded, bias)
            scratch = compute_routing_table(graph, seeded, bias)
            assert _tables_identical(repaired, scratch)
            missing = set(base.reachable_asns()) - set(
                repaired.reachable_asns())
            for asn in missing:
                assert repaired.get(asn) is None
                assert repaired.distance(asn) is None

    def test_snapshot_columns_identical_after_repair(self):
        # to_arrays is the persistence boundary: repaired and scratch
        # tables must serialise to byte-identical columns
        graph = _small_graph(2)
        bias = default_bias(graph, 2)
        asns = sorted(graph.asns)
        peers = frozenset(asns[2:10])
        base = compute_routing_table(graph, peers, bias)
        seeded = peers - {asns[4], asns[7]}
        repaired = update_routing_table(graph, base, seeded, bias)
        scratch = compute_routing_table(graph, seeded, bias)
        left, right = repaired.to_arrays(), scratch.to_arrays()
        assert sorted(left) == sorted(right)
        for name in left:
            assert left[name].dtype == right[name].dtype, name
            assert np.array_equal(left[name], right[name]), name
