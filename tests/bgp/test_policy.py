"""Tests for the BGP decision process."""

from repro.bgp import Origin, Route, best_route, best_routes, compare


def mk(prefix="10.0.0.0/24", path=(7,), nh="r1", lp=100, med=0,
       origin=Origin.IGP):
    return Route(prefix, tuple(path), nh, local_pref=lp, med=med,
                 origin=origin)


class TestBestRoute:
    def test_empty(self):
        assert best_route([]) is None

    def test_local_pref_wins_over_path_length(self):
        long_but_preferred = mk(path=(1, 2, 3, 4), lp=300)
        short = mk(path=(9,), lp=100)
        assert best_route([short, long_but_preferred]) is long_but_preferred

    def test_shorter_path_wins_at_equal_pref(self):
        short = mk(path=(1, 2))
        long = mk(path=(3, 4, 5))
        assert best_route([long, short]) is short

    def test_lower_origin_wins(self):
        igp = mk(origin=Origin.IGP)
        incomplete = mk(origin=Origin.INCOMPLETE, nh="r2")
        assert best_route([incomplete, igp]) is igp

    def test_med_compared_for_same_neighbor(self):
        low_med = mk(path=(7, 9), med=10)
        high_med = mk(path=(7, 9), med=50, nh="r2")
        assert best_route([high_med, low_med]) is low_med

    def test_lower_neighbor_asn_tie_break(self):
        via3 = mk(path=(3, 9))
        via5 = mk(path=(5, 9))
        assert best_route([via5, via3]) is via3

    def test_deterministic_final_tie_break_on_next_hop(self):
        a = mk(nh="a")
        b = mk(nh="b")
        assert best_route([b, a]) is a
        assert best_route([a, b]) is a


class TestBestRoutes:
    def test_multipath_set(self):
        r1 = mk(path=(3, 9), nh="a")
        r2 = mk(path=(5, 9), nh="b")
        worse = mk(path=(5, 9, 11), nh="c")
        result = best_routes([worse, r2, r1])
        assert result == [r1, r2]

    def test_empty(self):
        assert best_routes([]) == []

    def test_single(self):
        r = mk()
        assert best_routes([r]) == [r]


class TestCompare:
    def test_antisymmetric(self):
        a = mk(path=(1,))
        b = mk(path=(1, 2))
        assert compare(a, b) == -1
        assert compare(b, a) == 1

    def test_equal(self):
        a = mk()
        assert compare(a, a) == 0
