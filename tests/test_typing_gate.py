"""The strict-typing ratchet, enforceable without mypy installed.

CI runs real ``mypy`` (pinned in the dev extra) as the authoritative
gate; these tests keep the two invariants it depends on from regressing
in environments where mypy is absent:

* every function in a ratcheted package stays fully annotated
  (arguments and returns — the AST-level core of
  ``disallow_untyped_defs``/``disallow_incomplete_defs``);
* no bare generics (``Dict``/``List``/``Tuple`` without parameters —
  the AST-level core of ``disallow_any_generics``).
"""

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: packages under the strict ratchet — keep in sync with the
#: [[tool.mypy.overrides]] strict block in pyproject.toml.  Every
#: package is ratcheted now; new packages start (and stay) here.
STRICT_PACKAGES = ("util", "topology", "bgp", "pipeline", "perf",
                   "analysis", "core", "obs", "cms", "telemetry",
                   "traffic", "store", "experiments", "serve")

#: typing names that are meaningless without parameters
GENERIC_NAMES = frozenset({
    "dict", "list", "set", "frozenset", "tuple",
    "Dict", "List", "Set", "FrozenSet", "Tuple", "Type",
    "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
    "Callable", "Generator", "Deque", "DefaultDict", "Counter",
})


def strict_files():
    out = []
    for package in STRICT_PACKAGES:
        root = REPO_ROOT / "src" / "repro" / package
        out.extend(sorted(p for p in root.rglob("*.py")
                          if "__pycache__" not in p.parts))
    assert out, "strict packages missing from the tree?"
    return out


def _unannotated(tree):
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        for index, arg in enumerate(named):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                problems.append(
                    f"line {node.lineno}: {node.name}(... {arg.arg} ...) "
                    f"argument unannotated")
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                problems.append(
                    f"line {node.lineno}: {node.name}(*{star.arg}) "
                    f"unannotated")
        if node.returns is None and node.name != "__init__":
            problems.append(
                f"line {node.lineno}: {node.name} return unannotated")
    return problems


def _bare_generics(tree):
    subscripted = set()
    # a module-local class that shadows a typing name (e.g. an own
    # `Counter`) is not the generic — annotations naming it are fine
    local_classes = {node.name for node in ast.walk(tree)
                     if isinstance(node, ast.ClassDef)}
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and isinstance(node.value,
                                                          ast.Name):
            subscripted.add(id(node.value))

    def annotations():
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                every = (args.posonlyargs + args.args + args.kwonlyargs
                         + [a for a in (args.vararg, args.kwarg) if a])
                for arg in every:
                    if arg.annotation is not None:
                        yield arg.annotation
                if node.returns is not None:
                    yield node.returns
            elif isinstance(node, ast.AnnAssign):
                yield node.annotation

    problems = []
    for annotation in annotations():
        for node in ast.walk(annotation):
            if (isinstance(node, ast.Name) and node.id in GENERIC_NAMES
                    and node.id not in local_classes
                    and id(node) not in subscripted):
                problems.append(
                    f"line {node.lineno}: bare generic `{node.id}`")
    return problems


@pytest.mark.parametrize(
    "path", strict_files(),
    ids=lambda p: str(p.relative_to(REPO_ROOT / "src")))
def test_strict_package_stays_fully_annotated(path):
    tree = ast.parse(path.read_text())
    problems = _unannotated(tree) + _bare_generics(tree)
    assert not problems, f"{path}:\n  " + "\n  ".join(problems)


def test_pyproject_commits_the_ratchet():
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    assert "disallow_untyped_defs" in text
    for package in STRICT_PACKAGES:
        assert f'"repro.{package}.*"' in text, (
            f"{package} missing from the strict ratchet block")


def test_mypy_passes_when_available():
    """Run the real gate when mypy is installed (always true in CI)."""
    if shutil.which("mypy") is None:
        try:
            import mypy  # noqa: F401
        except ImportError:
            pytest.skip("mypy not installed in this environment")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
